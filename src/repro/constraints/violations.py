"""Detection of MD matches and CFD violations in a database instance."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..db.instance import DatabaseInstance
from ..db.tuples import Tuple
from .cfds import ConditionalFunctionalDependency
from .mds import MatchingDependency

__all__ = ["MDMatch", "CFDViolation", "find_md_matches", "find_cfd_violations", "violation_rate"]


@dataclass(frozen=True)
class MDMatch:
    """A pair of tuples satisfying an MD's premises but disagreeing on the identified values.

    Enforcing the MD on this pair (Definition 2.2) would unify
    ``left_value`` and ``right_value``.
    """

    md: MatchingDependency
    left_tuple: Tuple
    right_tuple: Tuple
    left_value: object
    right_value: object

    @property
    def needs_enforcement(self) -> bool:
        return self.left_value != self.right_value


@dataclass(frozen=True)
class CFDViolation:
    """A pair of tuples of one relation violating a CFD."""

    cfd: ConditionalFunctionalDependency
    first: Tuple
    second: Tuple


def find_md_matches(
    instance: DatabaseInstance,
    md: MatchingDependency,
    similar: Callable[[object, object], bool],
    *,
    only_disagreeing: bool = True,
) -> Iterator[MDMatch]:
    """Yield tuple pairs matched by *md* in *instance*.

    ``similar`` is the boolean ``≈`` operator (typically a
    :class:`repro.similarity.SimilarityIndex.are_similar` bound method so the
    scan is restricted to precomputed candidate pairs).  With
    ``only_disagreeing=True`` (the default) only pairs whose identified
    values differ — i.e. pairs on which the MD actually needs to be enforced —
    are reported.

    The scan blocks on the first premise pair: for every left tuple it only
    scores right tuples whose first premise value is a known similar partner
    or an exact match, so the cost is linear in the number of kept similar
    pairs rather than quadratic in the relation sizes.
    """
    schema = instance.schema
    left_relation = instance.relation(md.left_relation)
    right_relation = instance.relation(md.right_relation)
    left_schema = left_relation.schema
    right_schema = right_relation.schema
    first_premise = md.premises[0]

    # Group right tuples by their first-premise value for candidate lookup.
    right_by_value: dict[object, list[Tuple]] = defaultdict(list)
    for right_tuple in right_relation:
        right_by_value[right_tuple.value_of(right_schema, first_premise.right_attribute)].append(right_tuple)

    partner_lookup = getattr(similar, "__self__", None)
    partners_of = getattr(partner_lookup, "partners_of", None)

    for left_tuple in left_relation:
        left_value = left_tuple.value_of(left_schema, first_premise.left_attribute)
        if left_value is None:
            continue
        candidate_values: set[object] = {left_value}
        if partners_of is not None:
            candidate_values.update(partners_of(left_value))
        else:
            candidate_values.update(right_by_value.keys())
        # Sorted so matches are yielded in a hash-order-independent sequence
        # (enforcement applies them in yield order).
        for candidate_value in sorted(candidate_values, key=repr):
            for right_tuple in right_by_value.get(candidate_value, ()):
                if not md.premises_hold(schema, left_tuple, right_tuple, similar):
                    continue
                identified_left, identified_right = md.identified_values(schema, left_tuple, right_tuple)
                match = MDMatch(md, left_tuple, right_tuple, identified_left, identified_right)
                if match.needs_enforcement or not only_disagreeing:
                    yield match


def find_cfd_violations(
    instance: DatabaseInstance, cfd: ConditionalFunctionalDependency
) -> Iterator[CFDViolation]:
    """Yield the violating tuple pairs of *cfd* in *instance*.

    Tuples are grouped by their LHS values first, so the pairwise check runs
    only inside groups that can possibly violate the dependency.
    """
    relation = instance.relation(cfd.relation)
    schema = relation.schema
    groups: dict[tuple[object, ...], list[Tuple]] = defaultdict(list)
    for tup in relation:
        if cfd.lhs_matches_pattern(schema, tup):
            groups[cfd.lhs_values(schema, tup)].append(tup)

    for group in groups.values():
        for i, first in enumerate(group):
            if cfd.violated_by(schema, first, first):
                yield CFDViolation(cfd, first, first)
            for second in group[i + 1 :]:
                if cfd.violated_by(schema, first, second):
                    yield CFDViolation(cfd, first, second)


def violation_rate(instance: DatabaseInstance, cfds: Iterable[ConditionalFunctionalDependency]) -> float:
    """Fraction of tuples involved in at least one CFD violation.

    This is the quantity the paper calls ``p`` when injecting violations
    ("p of 5% means that 5% of tuples in each relation violate at least one
    CFD", Section 6.1.2).
    """
    violating: set[tuple[str, Tuple]] = set()
    for cfd in cfds:
        for violation in find_cfd_violations(instance, cfd):
            violating.add((cfd.relation, violation.first))
            violating.add((cfd.relation, violation.second))
    total = instance.tuple_count()
    return len(violating) / total if total else 0.0
