"""Conditional functional dependencies (CFDs).

Section 2.3: a CFD over relation ``R`` has the form ``(X → A, t_p)`` where
``X → A`` is a functional dependency and ``t_p`` is a *pattern tuple* over
``X ∪ {A}`` whose entries are either constants or the unnamed variable
``'-'``.  A pair of tuples violates the CFD when they agree on ``X``, match
the pattern on ``X``, but disagree on ``A`` or fail the pattern on ``A``.
Following the paper we keep CFDs in the normal form with a single right-hand
side attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..db.schema import DatabaseSchema, RelationSchema, SchemaError
from ..db.tuples import Tuple

__all__ = ["WILDCARD", "ConditionalFunctionalDependency", "pattern_matches"]


class _Wildcard:
    """The unnamed pattern variable ``'-'``: matches any value."""

    _instance: "_Wildcard | None" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "-"

    def __str__(self) -> str:
        return "-"


WILDCARD = _Wildcard()


def pattern_matches(value: object, pattern: object) -> bool:
    """The paper's ``≍`` predicate: ``a ≍ b`` iff ``a == b`` or ``b`` is ``'-'``."""
    return pattern is WILDCARD or value == pattern


@dataclass(frozen=True)
class ConditionalFunctionalDependency:
    """A CFD ``(X → A, t_p)`` over one relation.

    Attributes
    ----------
    name:
        Identifier used in repair-literal provenance and reports.
    relation:
        Relation symbol the CFD is defined over (CFDs are single-relation).
    lhs:
        Left-hand side attribute names ``X``.
    rhs:
        The single right-hand side attribute ``A``.
    lhs_pattern:
        Pattern values for ``X`` in the same order as ``lhs``; entries are
        constants or :data:`WILDCARD`.
    rhs_pattern:
        Pattern value for ``A`` (constant or :data:`WILDCARD`).
    """

    name: str
    relation: str
    lhs: tuple[str, ...]
    rhs: str
    lhs_pattern: tuple[object, ...] = field(default=())
    rhs_pattern: object = WILDCARD

    def __post_init__(self) -> None:
        if not self.lhs:
            raise ValueError(f"CFD {self.name!r} needs at least one left-hand side attribute")
        if self.rhs in self.lhs:
            raise ValueError(f"CFD {self.name!r}: right-hand side {self.rhs!r} also appears on the left-hand side")
        if not self.lhs_pattern:
            object.__setattr__(self, "lhs_pattern", tuple(WILDCARD for _ in self.lhs))
        if len(self.lhs_pattern) != len(self.lhs):
            raise ValueError(
                f"CFD {self.name!r}: pattern has {len(self.lhs_pattern)} entries for {len(self.lhs)} LHS attributes"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def fd(cls, name: str, relation: str, lhs: Sequence[str], rhs: str) -> "ConditionalFunctionalDependency":
        """A plain functional dependency (all-wildcard pattern)."""
        return cls(name, relation, tuple(lhs), rhs)

    @classmethod
    def of(
        cls,
        name: str,
        relation: str,
        lhs: Sequence[str],
        rhs: str,
        pattern: Mapping[str, object] | None = None,
    ) -> "ConditionalFunctionalDependency":
        """Build a CFD with a pattern given as ``{attribute: constant}``.

        Attributes absent from *pattern* get the wildcard.
        """
        pattern = pattern or {}
        lhs_pattern = tuple(pattern.get(attribute, WILDCARD) for attribute in lhs)
        rhs_pattern = pattern.get(rhs, WILDCARD)
        return cls(name, relation, tuple(lhs), rhs, lhs_pattern, rhs_pattern)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self, schema: DatabaseSchema) -> None:
        relation_schema = schema.relation(self.relation)
        for attribute in (*self.lhs, self.rhs):
            if not relation_schema.has_attribute(attribute):
                raise SchemaError(f"CFD {self.name!r}: {self.relation}.{attribute} does not exist")

    @property
    def attributes(self) -> tuple[str, ...]:
        return (*self.lhs, self.rhs)

    @property
    def is_plain_fd(self) -> bool:
        return self.rhs_pattern is WILDCARD and all(entry is WILDCARD for entry in self.lhs_pattern)

    # ------------------------------------------------------------------ #
    # semantics over tuples
    # ------------------------------------------------------------------ #
    def lhs_values(self, schema: RelationSchema, tup: Tuple) -> tuple[object, ...]:
        return tup.values_of(schema, self.lhs)

    def rhs_value(self, schema: RelationSchema, tup: Tuple) -> object:
        return tup.value_of(schema, self.rhs)

    def lhs_matches_pattern(self, schema: RelationSchema, tup: Tuple) -> bool:
        return all(
            pattern_matches(value, pattern)
            for value, pattern in zip(self.lhs_values(schema, tup), self.lhs_pattern)
        )

    def rhs_matches_pattern(self, schema: RelationSchema, tup: Tuple) -> bool:
        return pattern_matches(self.rhs_value(schema, tup), self.rhs_pattern)

    def violated_by(self, schema: RelationSchema, first: Tuple, second: Tuple) -> bool:
        """Do the two tuples jointly violate the CFD?

        Violation requires: equal LHS values that match the LHS pattern, and
        either unequal RHS values or an RHS value that fails the RHS pattern.
        A single tuple can "violate" a constant CFD on its own (when its RHS
        fails a constant pattern while its LHS matches); that case is handled
        by passing the same tuple twice.
        """
        first_lhs = self.lhs_values(schema, first)
        second_lhs = self.lhs_values(schema, second)
        if first_lhs != second_lhs:
            return False
        if not self.lhs_matches_pattern(schema, first):
            return False
        first_rhs = self.rhs_value(schema, first)
        second_rhs = self.rhs_value(schema, second)
        if first_rhs != second_rhs:
            return True
        return not pattern_matches(first_rhs, self.rhs_pattern)

    def satisfied_by(self, schema: RelationSchema, tuples: Iterable[Tuple]) -> bool:
        """Whether the given relation instance satisfies the CFD."""
        tuples = list(tuples)
        for i, first in enumerate(tuples):
            if self.violated_by(schema, first, first):
                return False
            for second in tuples[i + 1 :]:
                if self.violated_by(schema, first, second):
                    return False
        return True

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        lhs_pattern = ", ".join(str(entry) for entry in self.lhs_pattern)
        return f"{self.relation}: ({lhs} -> {self.rhs}, ({lhs_pattern} || {self.rhs_pattern}))"
