"""Repair generation: stable instances for MDs and minimal repairs for CFDs.

The learner itself never materialises repairs — that is the whole point of
the paper.  Repair generation is still needed in three places:

* the **test suite** validates the coverage semantics (Definitions 3.4/3.6)
  and the commutativity theorems (4.11/4.12) by comparing the learner's
  compact computation against brute-force enumeration over small databases;
* the **DLearn-Repaired baseline** (Section 6.1.3) learns over a single
  minimal repair of the CFD violations;
* the **Castor-Clean baseline** learns over a database whose MD
  heterogeneities were resolved up front.

``enforce_md`` implements Definition 2.2; ``stable_instances`` enumerates the
stable instances reachable by iterating MD applications (exponential — only
for small inputs); ``minimal_cfd_repair`` produces one repair of the CFD
violations using the minimal value-modification semantics the paper adopts
for its baseline.

Repairs are produced as :class:`~repro.db.overlay.OverlayInstance` —
copy-on-write views holding only the tuple-level delta over the original
instance — instead of full database copies.  Overlays answer every query and
index probe of the :class:`~repro.db.instance.DatabaseInstance` API (the
baselines learn over them directly), and
:meth:`~repro.db.overlay.OverlayInstance.materialize` remains the eager
reference path the property suite validates against.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Iterable, Iterator

from ..db.instance import DatabaseInstance
from ..db.overlay import OverlayInstance
from ..db.tuples import Tuple
from ..logic.terms import Constant, matched_constant
from .cfds import WILDCARD, ConditionalFunctionalDependency
from .mds import MatchingDependency
from .violations import MDMatch, find_cfd_violations, find_md_matches

__all__ = [
    "enforce_md",
    "stable_instances",
    "is_stable",
    "minimal_cfd_repair",
    "repairs_of",
]


def _unified_value(left: object, right: object) -> object:
    """The fresh value ``v_{a,b}`` both sides are unified to (Section 2.2)."""
    return matched_constant(Constant(left), Constant(right)).value


_MATCH_MARKER = "<match:"


def _guarded_similarity(similar: Callable[[object, object], bool]) -> Callable[[object, object], bool]:
    """Wrap a similarity predicate so fresh matched values only match themselves.

    The paper treats the unified value ``v_{a,b}`` as a fresh value whose
    relationship to other values is unknown; without this guard the textual
    rendering of two different matched values can look "similar" to the
    string operator and repair enumeration would keep merging unrelated
    entities.
    """

    def inner(left: object, right: object) -> bool:
        left_is_match = isinstance(left, str) and left.startswith(_MATCH_MARKER)
        right_is_match = isinstance(right, str) and right.startswith(_MATCH_MARKER)
        if left_is_match or right_is_match:
            return left == right
        return similar(left, right)

    return inner


def enforce_md(instance: DatabaseInstance, match: MDMatch) -> DatabaseInstance:
    """Enforce one MD on one matched tuple pair (Definition 2.2).

    Both identified values are replaced *globally* with the fresh unified
    value ``v_{a,b}``: the paper treats the two original values as two
    representations of one real-world value, so every other occurrence of
    either representation denotes that same value as well.  Global
    replacement is also what makes repeated enforcement terminate.

    The result is a copy-on-write overlay: only the rows containing either
    replaced value enter the delta, and chained enforcements merge their
    deltas over the one shared base instead of stacking copies.
    """
    if not match.needs_enforcement:
        return instance
    unified = _unified_value(match.left_value, match.right_value)
    repaired = OverlayInstance.over(instance).replace_value_globally(match.left_value, unified)
    repaired = repaired.replace_value_globally(match.right_value, unified)
    return repaired


def _pending_matches(
    instance: DatabaseInstance,
    mds: Iterable[MatchingDependency],
    similar: Callable[[object, object], bool],
) -> list[MDMatch]:
    guarded = _guarded_similarity(similar)
    pending: list[MDMatch] = []
    for md in mds:
        pending.extend(find_md_matches(instance, md, guarded, only_disagreeing=True))
    return pending


def is_stable(
    instance: DatabaseInstance,
    mds: Iterable[MatchingDependency],
    similar: Callable[[object, object], bool],
) -> bool:
    """A stable instance has no MD match left that still needs enforcement."""
    return not _pending_matches(instance, list(mds), similar)


def _instance_fingerprint(instance: DatabaseInstance) -> frozenset[tuple[str, tuple[object, ...]]]:
    return frozenset((tup.relation, tup.values) for tup in instance.all_tuples())


def stable_instances(
    instance: DatabaseInstance,
    mds: Iterable[MatchingDependency],
    similar: Callable[[object, object], bool],
    *,
    limit: int = 64,
    max_steps: int = 10_000,
) -> Iterator[DatabaseInstance]:
    """Enumerate stable instances reachable by iterating MD enforcement.

    Different enforcement orders can produce different stable instances
    (Example 2.3); this generator explores all orders, deduplicates states
    and yields each distinct stable instance once.  Both the number of
    yielded instances and the number of explored states are bounded because
    the search is exponential by nature — use only on small databases.
    """
    mds = list(mds)
    seen_states: set[frozenset] = set()
    yielded: set[frozenset] = set()
    stack: list[DatabaseInstance] = [instance]
    steps = 0
    produced = 0

    while stack and produced < limit and steps < max_steps:
        current = stack.pop()
        steps += 1
        fingerprint = _instance_fingerprint(current)
        if fingerprint in seen_states:
            continue
        seen_states.add(fingerprint)

        pending = _pending_matches(current, mds, similar)
        if not pending:
            if fingerprint not in yielded:
                yielded.add(fingerprint)
                produced += 1
                yield current
            continue
        for match in pending:
            stack.append(enforce_md(current, match))


def minimal_cfd_repair(
    instance: DatabaseInstance,
    cfds: Iterable[ConditionalFunctionalDependency],
    *,
    max_rounds: int = 10,
) -> DatabaseInstance:
    """Produce one repair of the CFD violations by minimal value modification.

    For every CFD and every violating LHS group the right-hand side values
    are unified to the group's most frequent RHS value that satisfies the
    RHS pattern (falling back to the pattern constant itself when no tuple
    satisfies it).  Repairing one CFD can induce violations of another
    (Section 4.1 discusses the analogous effect on clauses), so the procedure
    iterates to a fixpoint, bounded by ``max_rounds``.

    This mirrors the "minimal repair method, which is popular in repairing
    CFDs" that the paper uses to build the DLearn-Repaired baseline
    (Section 6.1.3).

    The repair is returned as a copy-on-write overlay (the original instance
    is returned untouched when no violation needs repairing): only the
    value-modified rows enter the delta, so the DLearn-Repaired baseline no
    longer pays a full database copy to learn over the repaired instance.
    """
    cfds = list(cfds)
    current: DatabaseInstance = instance
    for _ in range(max_rounds):
        changed = False
        for cfd in cfds:
            relation = current.relation(cfd.relation)
            schema = relation.schema
            groups: dict[tuple[object, ...], list[Tuple]] = defaultdict(list)
            for tup in relation:
                if cfd.lhs_matches_pattern(schema, tup):
                    groups[cfd.lhs_values(schema, tup)].append(tup)

            replacements: dict[Tuple, Tuple] = {}
            for group in groups.values():
                rhs_values = [cfd.rhs_value(schema, tup) for tup in group]
                valid_values = [value for value in rhs_values if _rhs_ok(cfd, value)]
                needs_repair = len(set(rhs_values)) > 1 or any(not _rhs_ok(cfd, value) for value in rhs_values)
                if not needs_repair:
                    continue
                if valid_values:
                    target_value = Counter(valid_values).most_common(1)[0][0]
                elif cfd.rhs_pattern is not WILDCARD:
                    target_value = cfd.rhs_pattern
                else:  # pragma: no cover - unreachable: some value always exists
                    target_value = rhs_values[0]
                for tup in group:
                    if cfd.rhs_value(schema, tup) != target_value:
                        replacements[tup] = tup.replace(schema, cfd.rhs, target_value)

            if replacements:
                changed = True
                current = OverlayInstance.over(current).map_relation(
                    cfd.relation, lambda tup, mapping=replacements: mapping.get(tup, tup)
                )
        if not changed:
            break
    return current


def _rhs_ok(cfd: ConditionalFunctionalDependency, value: object) -> bool:
    return cfd.rhs_pattern is WILDCARD or value == cfd.rhs_pattern


def repairs_of(
    instance: DatabaseInstance,
    mds: Iterable[MatchingDependency],
    cfds: Iterable[ConditionalFunctionalDependency],
    similar: Callable[[object, object], bool],
    *,
    limit: int = 64,
) -> Iterator[DatabaseInstance]:
    """Enumerate repairs of *instance*: stable under the MDs and satisfying the CFDs.

    Section 3.1: "A repair of I is a stable instance of I that satisfies Φ."
    Each stable instance is CFD-repaired with the minimal-modification
    procedure; distinct results are yielded once.  Exponential — small
    databases (tests) only.
    """
    cfds = list(cfds)
    seen: set[frozenset] = set()
    for stable in stable_instances(instance, mds, similar, limit=limit):
        repaired = minimal_cfd_repair(stable, cfds)
        fingerprint = _instance_fingerprint(repaired)
        if fingerprint not in seen:
            seen.add(fingerprint)
            yield repaired
