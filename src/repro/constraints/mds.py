"""Matching dependencies (MDs).

Section 2.2: an MD

    R1[A1..An] ≈ R2[B1..Bn]  →  R1[C] ⇌ R2[D]

states that whenever the values of the premise attribute pairs are pairwise
*similar*, the values of ``R1[C]`` and ``R2[D]`` refer to the same real-world
value and must be unified (made identical) in any clean instance.  Following
the paper we normalise MDs so the right-hand side identifies a single pair of
comparable attributes.

The library also uses MDs for the target relation of the learning task (e.g.
``highGrossing[title] ≈ movies[title] → ...`` in Example 4.1): the "relation"
on one side may be the target relation, whose tuples are the training
examples rather than stored rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..db.schema import DatabaseSchema, SchemaError
from ..db.tuples import Tuple

__all__ = ["AttributePair", "MatchingDependency"]


@dataclass(frozen=True, slots=True)
class AttributePair:
    """A pair of comparable attributes ``R1[A] / R2[B]``."""

    left_attribute: str
    right_attribute: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.left_attribute}~{self.right_attribute}"


@dataclass(frozen=True)
class MatchingDependency:
    """An MD ``R1[A1..n] ≈ R2[B1..n] → R1[C] ⇌ R2[D]``.

    Attributes
    ----------
    name:
        Identifier used in provenance tags of repair literals and in reports.
    left_relation / right_relation:
        The two (distinct) relation symbols the MD relates.
    premises:
        The attribute pairs whose similarity triggers the MD.
    identified:
        The attribute pair whose values the MD declares interchangeable.
    """

    name: str
    left_relation: str
    right_relation: str
    premises: tuple[AttributePair, ...]
    identified: AttributePair

    def __post_init__(self) -> None:
        if not self.premises:
            raise ValueError(f"MD {self.name!r} needs at least one premise attribute pair")
        if self.left_relation == self.right_relation:
            raise ValueError(
                f"MD {self.name!r}: the paper defines MDs across two distinct relations, "
                f"got {self.left_relation!r} twice"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def simple(
        cls,
        name: str,
        left_relation: str,
        left_attribute: str,
        right_relation: str,
        right_attribute: str,
    ) -> "MatchingDependency":
        """The common single-attribute MD ``R1[A] ≈ R2[B] → R1[A] ⇌ R2[B]``."""
        pair = AttributePair(left_attribute, right_attribute)
        return cls(name, left_relation, right_relation, (pair,), pair)

    @classmethod
    def of(
        cls,
        name: str,
        left_relation: str,
        right_relation: str,
        premises: Sequence[tuple[str, str]],
        identified: tuple[str, str] | None = None,
    ) -> "MatchingDependency":
        premise_pairs = tuple(AttributePair(a, b) for a, b in premises)
        identified_pair = AttributePair(*identified) if identified else premise_pairs[0]
        return cls(name, left_relation, right_relation, premise_pairs, identified_pair)

    # ------------------------------------------------------------------ #
    # validation & orientation
    # ------------------------------------------------------------------ #
    def validate(self, schema: DatabaseSchema, *, target_relation: str | None = None) -> None:
        """Check that the referenced relations/attributes exist and are comparable.

        ``target_relation`` names the learning target, which is not part of
        the stored schema; attributes on that side are not validated.
        """
        for relation, attributes in (
            (self.left_relation, [p.left_attribute for p in self.premises] + [self.identified.left_attribute]),
            (self.right_relation, [p.right_attribute for p in self.premises] + [self.identified.right_attribute]),
        ):
            if relation == target_relation:
                continue
            relation_schema = schema.relation(relation)
            for attribute in attributes:
                if not relation_schema.has_attribute(attribute):
                    raise SchemaError(f"MD {self.name!r}: {relation}.{attribute} does not exist")
        if target_relation in (self.left_relation, self.right_relation):
            return
        for premise in self.premises:
            if not schema.comparable(self.left_relation, premise.left_attribute, self.right_relation, premise.right_attribute):
                raise SchemaError(
                    f"MD {self.name!r}: attributes {self.left_relation}.{premise.left_attribute} and "
                    f"{self.right_relation}.{premise.right_attribute} are not comparable"
                )

    def involves(self, relation_name: str) -> bool:
        return relation_name in (self.left_relation, self.right_relation)

    def other_relation(self, relation_name: str) -> str:
        if relation_name == self.left_relation:
            return self.right_relation
        if relation_name == self.right_relation:
            return self.left_relation
        raise ValueError(f"MD {self.name!r} does not involve relation {relation_name!r}")

    def oriented_premises(self, from_relation: str) -> list[tuple[str, str]]:
        """Premise attribute pairs oriented as (from-attribute, to-attribute)."""
        if from_relation == self.left_relation:
            return [(p.left_attribute, p.right_attribute) for p in self.premises]
        if from_relation == self.right_relation:
            return [(p.right_attribute, p.left_attribute) for p in self.premises]
        raise ValueError(f"MD {self.name!r} does not involve relation {from_relation!r}")

    def oriented_identified(self, from_relation: str) -> tuple[str, str]:
        if from_relation == self.left_relation:
            return (self.identified.left_attribute, self.identified.right_attribute)
        if from_relation == self.right_relation:
            return (self.identified.right_attribute, self.identified.left_attribute)
        raise ValueError(f"MD {self.name!r} does not involve relation {from_relation!r}")

    # ------------------------------------------------------------------ #
    # semantics over tuples
    # ------------------------------------------------------------------ #
    def premises_hold(self, schema: DatabaseSchema, left_tuple: Tuple, right_tuple: Tuple, similar) -> bool:
        """Does ``t1[A1..n] ≈ t2[B1..n]`` hold for the two tuples?

        ``similar`` is a boolean predicate over values (the ``≈`` operator).
        """
        left_schema = schema.relation(self.left_relation)
        right_schema = schema.relation(self.right_relation)
        for premise in self.premises:
            left_value = left_tuple.value_of(left_schema, premise.left_attribute)
            right_value = right_tuple.value_of(right_schema, premise.right_attribute)
            if left_value is None or right_value is None:
                return False
            if left_value != right_value and not similar(left_value, right_value):
                return False
        return True

    def identified_values(self, schema: DatabaseSchema, left_tuple: Tuple, right_tuple: Tuple) -> tuple[object, object]:
        left_schema = schema.relation(self.left_relation)
        right_schema = schema.relation(self.right_relation)
        return (
            left_tuple.value_of(left_schema, self.identified.left_attribute),
            right_tuple.value_of(right_schema, self.identified.right_attribute),
        )

    def __str__(self) -> str:
        premises = ", ".join(
            f"{self.left_relation}[{p.left_attribute}] ~ {self.right_relation}[{p.right_attribute}]" for p in self.premises
        )
        return (
            f"{premises} -> {self.left_relation}[{self.identified.left_attribute}] <=> "
            f"{self.right_relation}[{self.identified.right_attribute}]"
        )


def normalize(mds: Iterable[MatchingDependency]) -> list[MatchingDependency]:
    """Return the MDs as a list, dropping exact duplicates while preserving order."""
    seen: set[MatchingDependency] = set()
    unique: list[MatchingDependency] = []
    for md in mds:
        if md not in seen:
            seen.add(md)
            unique.append(md)
    return unique
