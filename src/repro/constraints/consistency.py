"""Consistency checking for sets of CFDs.

Section 2.3 notes that, unlike plain FDs, a set of CFDs can be *inconsistent*
— no non-empty instance satisfies all of them — and that cleaning only makes
sense for consistent sets.  The classic example is ``(A → B, a1 || b1)`` and
``(B → A, b1 || a2)``: any tuple with ``A = a1`` is forced to ``B = b1``,
which forces ``A = a2``, a contradiction.

The full consistency problem is intractable in general (Bohannon et al.,
ICDE 2007); what the library needs is to reject obviously broken constraint
sets before learning.  We implement the standard single-tuple chase used for
constant CFDs: seed a symbolic tuple from each CFD's pattern, repeatedly
apply every CFD whose LHS pattern is entailed, and report inconsistency when
two different constants are forced onto the same attribute.  The check is
sound (it never rejects a consistent set); completeness holds for the
constant CFDs used in the experiments.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .cfds import WILDCARD, ConditionalFunctionalDependency

__all__ = ["check_consistency", "InconsistentCFDsError"]


class InconsistentCFDsError(ValueError):
    """Raised when a CFD set is detected to be unsatisfiable by any non-empty instance."""


def _entails(known: Mapping[str, object], attribute: str, pattern: object) -> bool:
    """Does the symbolic tuple *known* guarantee the pattern entry for *attribute*?"""
    if pattern is WILDCARD:
        return True
    return known.get(attribute, WILDCARD) == pattern


def _chase(seed: dict[str, object], cfds: list[ConditionalFunctionalDependency]) -> bool:
    """Chase the symbolic tuple *seed*; return False on contradiction."""
    known = dict(seed)
    changed = True
    while changed:
        changed = False
        for cfd in cfds:
            if cfd.rhs_pattern is WILDCARD:
                continue
            # Wildcard LHS entries match any value, so only constant entries
            # constrain whether the chase step applies.
            applies = all(
                _entails(known, attribute, pattern)
                for attribute, pattern in zip(cfd.lhs, cfd.lhs_pattern)
                if pattern is not WILDCARD
            )
            if not applies:
                continue
            existing = known.get(cfd.rhs, WILDCARD)
            if existing is WILDCARD:
                known[cfd.rhs] = cfd.rhs_pattern
                changed = True
            elif existing != cfd.rhs_pattern:
                return False
    return True


def check_consistency(cfds: Iterable[ConditionalFunctionalDependency]) -> None:
    """Raise :class:`InconsistentCFDsError` when the CFD set is detectably inconsistent.

    CFDs over different relations never interact, so the check runs per
    relation.  For each relation, every CFD with a constant pattern seeds a
    chase with the constants of its own pattern; if the chase derives two
    different constants for one attribute the set is inconsistent.
    """
    by_relation: dict[str, list[ConditionalFunctionalDependency]] = {}
    for cfd in cfds:
        by_relation.setdefault(cfd.relation, []).append(cfd)

    for relation, relation_cfds in by_relation.items():
        for cfd in relation_cfds:
            seed: dict[str, object] = {
                attribute: pattern
                for attribute, pattern in zip(cfd.lhs, cfd.lhs_pattern)
                if pattern is not WILDCARD
            }
            if cfd.rhs_pattern is not WILDCARD:
                seed.setdefault(cfd.rhs, cfd.rhs_pattern)
            if not _chase(seed, relation_cfds):
                raise InconsistentCFDsError(
                    f"CFDs over relation {relation!r} are inconsistent; offending seed pattern from {cfd.name!r}"
                )
