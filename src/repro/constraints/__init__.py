"""Declarative data-quality constraints: matching dependencies and CFDs."""

from .cfds import WILDCARD, ConditionalFunctionalDependency, pattern_matches
from .consistency import InconsistentCFDsError, check_consistency
from .mds import AttributePair, MatchingDependency
from .repairs import enforce_md, is_stable, minimal_cfd_repair, repairs_of, stable_instances
from .violations import CFDViolation, MDMatch, find_cfd_violations, find_md_matches, violation_rate

__all__ = [
    "AttributePair",
    "CFDViolation",
    "ConditionalFunctionalDependency",
    "InconsistentCFDsError",
    "MDMatch",
    "MatchingDependency",
    "WILDCARD",
    "check_consistency",
    "enforce_md",
    "find_cfd_violations",
    "find_md_matches",
    "is_stable",
    "minimal_cfd_repair",
    "pattern_matches",
    "repairs_of",
    "stable_instances",
    "violation_rate",
]
