"""Learning problems: database + constraints + target relation + examples.

A :class:`LearningProblem` bundles everything DLearn (and the baselines)
needs: the dirty database instance, the target relation to learn, the
matching dependencies and CFDs describing the database's quality problems,
the positive/negative training examples, and the similarity machinery built
from the MDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..constraints.cfds import ConditionalFunctionalDependency
from ..constraints.consistency import check_consistency
from ..constraints.mds import MatchingDependency
from ..db.instance import DatabaseInstance
from ..db.schema import RelationSchema
from ..similarity.composite import SimilarityOperator
from ..similarity.index import SimilarityIndex

__all__ = ["Example", "ExampleSet", "LearningProblem"]


@dataclass(frozen=True, slots=True)
class Example:
    """One training example: a tuple of the target relation plus its label."""

    values: tuple[object, ...]
    positive: bool = True

    @property
    def negative(self) -> bool:
        return not self.positive

    def __str__(self) -> str:  # pragma: no cover - trivial
        sign = "+" if self.positive else "-"
        return f"{sign}{self.values}"


@dataclass
class ExampleSet:
    """Positive and negative examples of the target relation."""

    positives: list[Example] = field(default_factory=list)
    negatives: list[Example] = field(default_factory=list)

    @classmethod
    def of(cls, positives: Iterable[Sequence[object]], negatives: Iterable[Sequence[object]]) -> "ExampleSet":
        return cls(
            positives=[Example(tuple(values), True) for values in positives],
            negatives=[Example(tuple(values), False) for values in negatives],
        )

    def __len__(self) -> int:
        return len(self.positives) + len(self.negatives)

    def all(self) -> list[Example]:
        return self.positives + self.negatives

    def limited(self, max_positives: int | None, max_negatives: int | None) -> "ExampleSet":
        """Return a copy restricted to the first N positives / negatives."""
        return ExampleSet(
            positives=self.positives[:max_positives] if max_positives is not None else list(self.positives),
            negatives=self.negatives[:max_negatives] if max_negatives is not None else list(self.negatives),
        )

    def describe(self) -> str:
        return f"{len(self.positives)} positive / {len(self.negatives)} negative examples"


@dataclass
class LearningProblem:
    """A relational learning task over a (possibly dirty) database.

    Attributes
    ----------
    database:
        The dirty database instance ``I``.
    target:
        Schema of the target relation ``T`` (not stored in the database — its
        tuples are the training examples).
    examples:
        Positive and negative training examples.
    mds:
        Matching dependencies over the database (possibly involving the
        target relation, e.g. matching example titles against movie titles).
    cfds:
        Conditional functional dependencies over the database relations.
    constant_attributes:
        ``(relation, attribute)`` pairs whose values should be kept as
        constants in bottom clauses (categorical attributes such as genres or
        product categories), so learned clauses may test them directly.  All
        other constants are variabilised, as in Section 4.1.
    similarity_operator:
        The ``≈`` operator; defaults to the paper's composite operator.
    """

    database: DatabaseInstance
    target: RelationSchema
    examples: ExampleSet
    mds: list[MatchingDependency] = field(default_factory=list)
    cfds: list[ConditionalFunctionalDependency] = field(default_factory=list)
    constant_attributes: frozenset[tuple[str, str]] = frozenset()
    similarity_operator: SimilarityOperator | None = None

    def __post_init__(self) -> None:
        if self.similarity_operator is None:
            self.similarity_operator = SimilarityOperator()
        for md in self.mds:
            md.validate(self.database.schema, target_relation=self.target.name)
        for cfd in self.cfds:
            cfd.validate(self.database.schema)
        check_consistency(self.cfds)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @property
    def target_name(self) -> str:
        return self.target.name

    def with_examples(self, examples: ExampleSet) -> "LearningProblem":
        """Return a copy with a different example set (train/test splits)."""
        return replace(self, examples=examples)

    def with_database(self, database: DatabaseInstance) -> "LearningProblem":
        """Return a copy over a different database instance (e.g. a repaired one)."""
        return replace(self, database=database)

    def with_constraints(
        self,
        mds: list[MatchingDependency] | None = None,
        cfds: list[ConditionalFunctionalDependency] | None = None,
    ) -> "LearningProblem":
        return replace(
            self,
            mds=list(self.mds) if mds is None else mds,
            cfds=list(self.cfds) if cfds is None else cfds,
        )

    def keeps_constant(self, relation: str, attribute: str) -> bool:
        return (relation, attribute) in self.constant_attributes

    # ------------------------------------------------------------------ #
    # similarity indexes
    # ------------------------------------------------------------------ #
    def _column_values(self, relation_name: str, attribute_name: str) -> list[object]:
        """Values of one column; the target relation's column comes from the examples."""
        if relation_name == self.target.name:
            position = self.target.position_of(attribute_name)
            return [example.values[position] for example in self.examples.all()]
        relation = self.database.relation(relation_name)
        # Sorted: distinct_values is a set, and column order decides top-k
        # tie-breaking in the indexes built from it.
        return sorted(relation.distinct_values(attribute_name), key=repr)

    def build_similarity_indexes(
        self, *, top_k: int, threshold: float | None = None
    ) -> dict[str, SimilarityIndex]:
        """Build one precomputed top-``k_m`` similarity index per MD premise column pair.

        The returned dictionary is keyed by MD name.  Indexes are built over
        the first premise pair of each MD — multi-premise MDs use the first
        pair for candidate generation and verify the remaining pairs
        tuple-by-tuple during bottom-clause construction.
        """
        operator = self.similarity_operator
        if threshold is not None:
            operator = SimilarityOperator(measure=operator.measure, threshold=threshold)
        indexes: dict[str, SimilarityIndex] = {}
        for md in self.mds:
            first = md.premises[0]
            left_values = self._column_values(md.left_relation, first.left_attribute)
            right_values = self._column_values(md.right_relation, first.right_attribute)
            index = SimilarityIndex(operator=operator, top_k=top_k)
            index.build(left_values, right_values)
            indexes[md.name] = index
        return indexes

    def describe(self) -> str:
        lines = [
            f"target: {self.target}",
            f"examples: {self.examples.describe()}",
            f"database: {self.database.tuple_count()} tuples in {len(self.database.schema)} relations",
            f"MDs: {len(self.mds)}, CFDs: {len(self.cfds)}",
        ]
        return "\n".join(lines)
