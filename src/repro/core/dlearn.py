"""The DLearn learner: covering loop, learned models, prediction.

:class:`DLearn` ties the pieces together (Section 4):

1. open a :class:`~repro.core.session.LearningSession`, which builds the
   per-MD similarity indexes (top-``k_m`` matches, Section 5) and owns the
   batched saturation and coverage machinery;
2. covering loop (Algorithm 1): while uncovered positive examples remain,
   build the bottom clause of one of them (Algorithm 2), generalise it
   (Section 4.2), and accept it into the definition when it meets the minimum
   criterion;
3. return a :class:`LearnedModel` that can describe the learned definition
   and classify new tuples of the target relation — through the *same*
   session, so prediction and cross-validation test folds reuse the prepared
   similarity and probe state instead of rebuilding it per call.

The Castor-style baselines in :mod:`repro.baselines` reuse exactly this class
with different configuration switches, which is what makes the comparisons of
Section 6 apples-to-apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..db.sampling import Sampler
from ..logic.clauses import Definition, HornClause
from ..logic.subsumption import SubsumptionChecker
from .bottom_clause import BottomClauseBuilder
from .config import DLearnConfig
from .coverage import CoverageEngine
from .generalization import Generalizer, LearnedClause
from .problem import Example, ExampleSet, LearningProblem
from .scoring import ClauseStats
from .session import DatabasePreparation, LearningSession

__all__ = ["DLearn", "LearnedModel"]


@dataclass
class LearnedModel:
    """The outcome of a learning run.

    Holds the learned Horn definition, per-clause training statistics, the
    configuration and problem it was learned from, the wall-clock learning
    time, and the learning session.  ``predict`` classifies fresh tuples of
    the target relation through a session derived for the evaluation example
    set: unseen values (e.g. test-fold titles) get their own similarity
    matches — exactly what the paper's 5-fold cross-validation requires —
    while everything example-set-independent (pair scoring, database probes)
    is reused from the training session's preparation.
    """

    definition: Definition
    clause_stats: list[ClauseStats]
    config: DLearnConfig
    problem: LearningProblem
    learning_time_seconds: float = 0.0
    session: LearningSession | None = None

    @property
    def clauses(self) -> list[HornClause]:
        return list(self.definition.clauses)

    def describe(self) -> str:
        """Human-readable rendering of the learned definition with coverage counts."""
        if not self.definition:
            return f"{self.problem.target_name}: <empty definition>"
        lines = []
        for clause, stats in zip(self.definition.clauses, self.clause_stats):
            lines.append(str(clause))
            lines.append(f"    (positives covered={stats.positives_covered}, negatives covered={stats.negatives_covered})")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict(self, examples: Sequence[Example]) -> list[bool]:
        """Classify *examples*: ``True`` when the learned definition covers the tuple.

        Runs through the batched coverage API: every clause of the definition
        is prepared once and reused across all examples (and the fan-out
        honours ``config.n_jobs``).  With a learning session attached the
        evaluation engine is memoised per example-value set, so consecutive
        calls classify through the same prepared indexes and ground clauses.
        """
        if not self.definition:
            return [False for _ in examples]
        engine = self._engine_for(examples)
        return engine.batch_predicts_positive(self.definition.clauses, examples)

    def _engine_for(self, examples: Sequence[Example]) -> CoverageEngine:
        if self.session is not None:
            return self.session.evaluation_session(examples).engine
        return self.fresh_engine_for(examples)

    def fresh_engine_for(self, examples: Sequence[Example]) -> CoverageEngine:
        """A coverage engine built from scratch for *examples*.

        The pre-session prediction path, kept as the reference the reused
        session is validated against: its verdicts must be identical to the
        session path's (tests and ``bench_saturation_batch.py`` assert this).
        """
        evaluation_problem = self.problem.with_examples(
            ExampleSet(
                positives=[e for e in examples if e.positive],
                negatives=[e for e in examples if e.negative],
            )
        )
        indexes = (
            evaluation_problem.build_similarity_indexes(
                top_k=self.config.top_k_matches, threshold=self.config.similarity_threshold
            )
            if self.config.use_mds
            else {}
        )
        builder = BottomClauseBuilder(
            evaluation_problem, self.config, indexes, Sampler(self.config.seed)
        )
        return CoverageEngine(builder, self.config, SubsumptionChecker())


class DLearn:
    """Bottom-up relational learner over dirty data (the paper's system)."""

    def __init__(self, config: DLearnConfig | None = None) -> None:
        self.config = config or DLearnConfig()

    # ------------------------------------------------------------------ #
    def session(
        self, problem: LearningProblem, *, preparation: DatabasePreparation | None = None
    ) -> LearningSession:
        """Open a learning session for *problem* (sharing *preparation* when given)."""
        return LearningSession(problem, self.config, preparation=preparation)

    def fit(
        self,
        problem: LearningProblem,
        *,
        session: LearningSession | None = None,
        preparation: DatabasePreparation | None = None,
    ) -> LearnedModel:
        """Learn a Horn definition of the problem's target relation (Algorithm 1).

        ``preparation`` shares example-set-independent prepared state (index
        scoring, database probes) with other fits over the same database
        instance — cross-validation folds, scenario-grid cells.  ``session``
        supplies a fully prepared session (it must be over *problem* with
        this learner's config); otherwise one is opened here.  The returned
        model keeps the session for prediction-time reuse.
        """
        config = self.config
        started = time.perf_counter()

        if session is None:
            session = self.session(problem, preparation=preparation)
        builder = session.builder
        engine = session.engine
        generalizer = session.generalizer

        positives = list(problem.examples.positives)
        negatives = list(problem.examples.negatives)
        uncovered = list(positives)
        definition = Definition(problem.target_name)
        clause_stats: list[ClauseStats] = []

        if uncovered:
            # Saturate every training example in one batched chase up front;
            # all later bottom-clause and ground-clause requests hit the
            # session's saturation cache.
            session.warm_saturation(positives + negatives)

        while uncovered and len(definition) < config.max_clauses:
            seed = uncovered[0]
            bottom_clause = builder.build(seed, ground=False)
            learned: LearnedClause = generalizer.learn_clause(bottom_clause, uncovered, negatives)

            if learned.stats.satisfies_criterion(config):
                definition.add(learned.clause)
                clause_stats.append(learned.stats)
                covered_flags = engine.batch_covers(learned.clause, uncovered)
                remaining = [example for example, covered in zip(uncovered, covered_flags) if not covered]
                if len(remaining) == len(uncovered):
                    # Safety: the clause must cover its seed (Proposition 4.3);
                    # drop the seed explicitly if coverage testing disagrees.
                    remaining = [example for example in uncovered if example is not seed]
                uncovered = remaining
            else:
                uncovered = [example for example in uncovered if example is not seed]

        elapsed = time.perf_counter() - started
        return LearnedModel(
            definition=definition,
            clause_stats=clause_stats,
            config=config,
            problem=problem,
            learning_time_seconds=elapsed,
            session=session,
        )
