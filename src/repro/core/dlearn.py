"""The DLearn learner: covering loop, learned models, prediction.

:class:`DLearn` ties the pieces together (Section 4):

1. build the per-MD similarity indexes (top-``k_m`` matches, Section 5);
2. covering loop (Algorithm 1): while uncovered positive examples remain,
   build the bottom clause of one of them (Algorithm 2), generalise it
   (Section 4.2), and accept it into the definition when it meets the minimum
   criterion;
3. return a :class:`LearnedModel` that can describe the learned definition
   and classify new tuples of the target relation.

The Castor-style baselines in :mod:`repro.baselines` reuse exactly this class
with different configuration switches, which is what makes the comparisons of
Section 6 apples-to-apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..db.sampling import Sampler
from ..logic.clauses import Definition, HornClause
from ..logic.subsumption import SubsumptionChecker
from .bottom_clause import BottomClauseBuilder
from .config import DLearnConfig
from .coverage import CoverageEngine
from .generalization import Generalizer, LearnedClause
from .problem import Example, ExampleSet, LearningProblem
from .scoring import ClauseStats

__all__ = ["DLearn", "LearnedModel"]


@dataclass
class LearnedModel:
    """The outcome of a learning run.

    Holds the learned Horn definition, per-clause training statistics, the
    configuration and problem it was learned from, and the wall-clock
    learning time.  ``predict`` classifies fresh tuples of the target
    relation by rebuilding the similarity/coverage machinery so that unseen
    values (e.g. test-fold titles) get their own similarity matches — exactly
    what the paper's 5-fold cross-validation requires.
    """

    definition: Definition
    clause_stats: list[ClauseStats]
    config: DLearnConfig
    problem: LearningProblem
    learning_time_seconds: float = 0.0

    @property
    def clauses(self) -> list[HornClause]:
        return list(self.definition.clauses)

    def describe(self) -> str:
        """Human-readable rendering of the learned definition with coverage counts."""
        if not self.definition:
            return f"{self.problem.target_name}: <empty definition>"
        lines = []
        for clause, stats in zip(self.definition.clauses, self.clause_stats):
            lines.append(str(clause))
            lines.append(f"    (positives covered={stats.positives_covered}, negatives covered={stats.negatives_covered})")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict(self, examples: Sequence[Example]) -> list[bool]:
        """Classify *examples*: ``True`` when the learned definition covers the tuple.

        Runs through the batched coverage API: every clause of the definition
        is prepared once and reused across all examples (and the fan-out
        honours ``config.n_jobs``).
        """
        if not self.definition:
            return [False for _ in examples]
        engine = self._engine_for(examples)
        return engine.batch_predicts_positive(self.definition.clauses, examples)

    def _engine_for(self, examples: Sequence[Example]) -> CoverageEngine:
        evaluation_problem = self.problem.with_examples(
            ExampleSet(
                positives=[e for e in examples if e.positive],
                negatives=[e for e in examples if e.negative],
            )
        )
        indexes = (
            evaluation_problem.build_similarity_indexes(
                top_k=self.config.top_k_matches, threshold=self.config.similarity_threshold
            )
            if self.config.use_mds
            else {}
        )
        builder = BottomClauseBuilder(
            evaluation_problem, self.config, indexes, Sampler(self.config.seed)
        )
        return CoverageEngine(builder, self.config, SubsumptionChecker())


class DLearn:
    """Bottom-up relational learner over dirty data (the paper's system)."""

    def __init__(self, config: DLearnConfig | None = None) -> None:
        self.config = config or DLearnConfig()

    # ------------------------------------------------------------------ #
    def fit(self, problem: LearningProblem) -> LearnedModel:
        """Learn a Horn definition of the problem's target relation (Algorithm 1)."""
        config = self.config
        started = time.perf_counter()

        indexes = (
            problem.build_similarity_indexes(top_k=config.top_k_matches, threshold=config.similarity_threshold)
            if config.use_mds
            else {}
        )
        sampler = Sampler(config.seed)
        builder = BottomClauseBuilder(problem, config, indexes, sampler)
        engine = CoverageEngine(builder, config, SubsumptionChecker())
        generalizer = Generalizer(engine, config, sampler)

        positives = list(problem.examples.positives)
        negatives = list(problem.examples.negatives)
        uncovered = list(positives)
        definition = Definition(problem.target_name)
        clause_stats: list[ClauseStats] = []

        while uncovered and len(definition) < config.max_clauses:
            seed = uncovered[0]
            bottom_clause = builder.build(seed, ground=False)
            learned: LearnedClause = generalizer.learn_clause(bottom_clause, uncovered, negatives)

            if learned.stats.satisfies_criterion(config):
                definition.add(learned.clause)
                clause_stats.append(learned.stats)
                covered_flags = engine.batch_covers(learned.clause, uncovered)
                remaining = [example for example, covered in zip(uncovered, covered_flags) if not covered]
                if len(remaining) == len(uncovered):
                    # Safety: the clause must cover its seed (Proposition 4.3);
                    # drop the seed explicitly if coverage testing disagrees.
                    remaining = [example for example in uncovered if example is not seed]
                uncovered = remaining
            else:
                uncovered = [example for example in uncovered if example is not seed]

        elapsed = time.perf_counter() - started
        return LearnedModel(
            definition=definition,
            clause_stats=clause_stats,
            config=config,
            problem=problem,
            learning_time_seconds=elapsed,
        )
