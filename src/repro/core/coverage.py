"""Coverage testing over heterogeneous data (Section 4.3).

Instead of evaluating a clause as a (very long) join over the database,
DLearn checks coverage by θ-subsumption against the example's *ground bottom
clause*:

* **positive example** ``e`` (Definition 3.4 — every repaired clause must
  cover ``e`` in some repair):

  1. if ``C`` θ-subsumes ``G_e`` directly the example is covered
     (Theorem 4.6 — θ-subsumption is sound);
  2. otherwise project both clauses onto their MD-only parts
     (``C^{md}`` / ``G_e^{md}``): when even those do not subsume, the example
     is not covered (Theorem 4.9 — for MD-only repair literals
     θ-subsumption is also complete);
  3. otherwise expand the CFD repair groups on both sides and require every
     CFD-variant of ``C`` to subsume some CFD-variant of ``G_e``.

* **negative example** ``e⁻`` (Definition 3.6 — it suffices that one repaired
  clause covers ``e⁻`` in some repair): same fast path, but the CFD-variant
  check is existential on both sides (Proposition 4.10).

Ground bottom clauses are cached per example because the same examples are
tested against many candidate clauses during generalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic.clauses import HornClause
from ..logic.subsumption import PreparedClause, SubsumptionChecker
from .bottom_clause import BottomClauseBuilder
from .config import DLearnConfig
from .problem import Example
from .repair_literals import repaired_clauses

__all__ = ["CoverageEngine"]

_CFD_PREFIX = "cfd:"


class CoverageEngine:
    """Computes example coverage for clauses with repair literals."""

    def __init__(
        self,
        builder: BottomClauseBuilder,
        config: DLearnConfig,
        checker: SubsumptionChecker | None = None,
    ) -> None:
        self.builder = builder
        self.config = config
        self.checker = checker or SubsumptionChecker()
        self._ground_cache: dict[tuple[tuple[object, ...], bool], PreparedClause] = {}

    # ------------------------------------------------------------------ #
    # ground bottom clauses
    # ------------------------------------------------------------------ #
    def prepared_ground(self, example: Example) -> PreparedClause:
        """The example's ground bottom clause, pre-processed for repeated subsumption tests."""
        key = (example.values, example.positive)
        if key not in self._ground_cache:
            self._ground_cache[key] = self.checker.prepare(self.builder.build(example, ground=True))
        return self._ground_cache[key]

    def ground_bottom_clause(self, example: Example) -> HornClause:
        return self.prepared_ground(example).clause

    def clear_cache(self) -> None:
        self._ground_cache.clear()

    # ------------------------------------------------------------------ #
    # clause-level coverage
    # ------------------------------------------------------------------ #
    def covers(self, clause: HornClause, example: Example) -> bool:
        """Coverage of *example* by *clause* under the label-appropriate semantics."""
        ground = self.prepared_ground(example)
        if example.positive:
            return self.covers_ground_positive(clause, ground)
        return self.covers_ground_negative(clause, ground)

    def covers_ground_positive(self, clause: HornClause, ground: HornClause | PreparedClause) -> bool:
        """Definition 3.4 via the Section 4.3 procedure."""
        if self.checker.subsumes(clause, ground).subsumes:
            return True
        ground_clause = ground.clause if isinstance(ground, PreparedClause) else ground
        clause_has_cfd = self._has_cfd_repairs(clause)
        ground_has_cfd = self._has_cfd_repairs(ground_clause)
        if not clause_has_cfd and not ground_has_cfd:
            return False
        clause_md = self._md_projection(clause)
        ground_md = self._md_projection(ground_clause)
        if not self.checker.subsumes(clause_md, ground_md).subsumes:
            return False
        clause_variants = self._cfd_variants(clause)
        ground_variants = self._cfd_variants(ground_clause)
        return all(
            any(self.checker.subsumes(cv, gv).subsumes for gv in ground_variants) for cv in clause_variants
        )

    def covers_ground_negative(self, clause: HornClause, ground: HornClause | PreparedClause) -> bool:
        """Definition 3.6 / Proposition 4.10."""
        if self.checker.subsumes(clause, ground).subsumes:
            return True
        ground_clause = ground.clause if isinstance(ground, PreparedClause) else ground
        if not (self._has_cfd_repairs(clause) or self._has_cfd_repairs(ground_clause)):
            return False
        clause_variants = self._cfd_variants(clause)
        ground_variants = self._cfd_variants(ground_clause)
        return any(
            any(self.checker.subsumes(cv, gv).subsumes for gv in ground_variants) for cv in clause_variants
        )

    # ------------------------------------------------------------------ #
    # definition-level coverage and counting
    # ------------------------------------------------------------------ #
    def definition_covers(self, clauses: Iterable[HornClause], example: Example) -> bool:
        """A definition covers an example when at least one clause does (Section 2.1)."""
        return any(self.covers(clause, example) for clause in clauses)

    def predicts_positive(self, clauses: Iterable[HornClause], example: Example) -> bool:
        """Classification rule used at test time: the positive-coverage semantics."""
        ground = self.prepared_ground(example)
        return any(self.covers_ground_positive(clause, ground) for clause in clauses)

    def covered_counts(
        self, clause: HornClause, positives: Sequence[Example], negatives: Sequence[Example]
    ) -> tuple[int, int]:
        positives_covered = sum(1 for example in positives if self.covers(clause, example))
        negatives_covered = sum(1 for example in negatives if self.covers(clause, example))
        return positives_covered, negatives_covered

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _has_cfd_repairs(clause: HornClause) -> bool:
        return any(
            literal.provenance and literal.provenance.startswith(_CFD_PREFIX)
            for literal in clause.repair_literals
        )

    def _cfd_variants(self, clause: HornClause) -> list[HornClause]:
        return repaired_clauses(
            clause, only_provenance_prefix=_CFD_PREFIX, max_results=self.config.max_cfd_expansions
        )

    @staticmethod
    def _md_projection(clause: HornClause) -> HornClause:
        """Drop CFD repair literals and the non-repair literals they are connected to.

        What remains is the ``C^{md}`` / ``G^{md}`` clause of Section 4.3: all
        literals whose connected repair literals (if any) correspond to MDs.
        """
        cfd_repairs = {
            literal
            for literal in clause.repair_literals
            if literal.provenance and literal.provenance.startswith(_CFD_PREFIX)
        }
        if not cfd_repairs:
            return clause
        keep = []
        for literal in clause.body:
            if literal in cfd_repairs:
                continue
            if not literal.is_repair:
                connected = clause.repair_literals_connected_to(literal)
                if connected & cfd_repairs:
                    continue
            keep.append(literal)
        return HornClause(clause.head, tuple(keep)).prune_dangling_restrictions()
