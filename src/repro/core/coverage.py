"""Coverage testing over heterogeneous data (Section 4.3), batched and cached.

Instead of evaluating a clause as a (very long) join over the database,
DLearn checks coverage by θ-subsumption against the example's *ground bottom
clause*:

* **positive example** ``e`` (Definition 3.4 — every repaired clause must
  cover ``e`` in some repair):

  1. if ``C`` θ-subsumes ``G_e`` directly the example is covered
     (Theorem 4.6 — θ-subsumption is sound);
  2. otherwise project both clauses onto their MD-only parts
     (``C^{md}`` / ``G_e^{md}``): when even those do not subsume, the example
     is not covered (Theorem 4.9 — for MD-only repair literals
     θ-subsumption is also complete);
  3. otherwise expand the CFD repair groups on both sides and require every
     CFD-variant of ``C`` to subsume some CFD-variant of ``G_e``.

* **negative example** ``e⁻`` (Definition 3.6 — it suffices that one repaired
  clause covers ``e⁻`` in some repair): same fast path, but the CFD-variant
  check is existential on both sides (Proposition 4.10).

Every step of that pipeline is a pure function of the participating clauses,
and learning evaluates the same clauses against the same examples over and
over: the ground bottom clause of an example is tested against every
candidate of every generalisation round, and a candidate clause is tested
against every example.  The engine therefore caches *both* sides:

* ground bottom clauses are built and prepared once per example (keyed on the
  example's values — the clause does not depend on the label);
* the general side is prepared once per clause
  (:class:`repro.logic.subsumption.PreparedGeneral`), and the MD projection
  and CFD-variant expansion of any clause are memoised in per-engine LRU
  caches.

:meth:`CoverageEngine.batch_covers` evaluates one clause against many
examples through those caches, optionally fanning the per-example checks out
across a thread pool (``DLearnConfig.n_jobs``);
:meth:`CoverageEngine.covers_serial` keeps the original one-call-at-a-time
pipeline as an uncached reference implementation for tests and benchmarks.

On top of the clause-level caches sits a session-level **verdict cache**:
the final coverage verdict of every (candidate clause, ground bottom clause,
label semantics) triple is remembered, so the covering loop — which re-scores
surviving candidates against the full example set round after round — never
re-proves a pair it already settled.  The engine also owns the session's
:class:`~repro.logic.compiled.ClauseCompiler`: every checker it drives
(including the per-thread clones of the ``n_jobs`` fan-out) shares one term
interner, so clauses are compiled to the integer plane once per session.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from typing import Iterable, Sequence

from ..logic.clauses import HornClause
from ..logic.compiled import ClauseCompiler, general_to_wire, specific_to_wire
from ..logic.subsumption import PreparedClause, PreparedGeneral, SubsumptionChecker
from ..testing.chaos import ChaosInjector
from .bottom_clause import BottomClauseBuilder
from .config import DLearnConfig
from .fanout import ProcessFanout, checker_params
from .problem import Example
from .repair_literals import repaired_clauses
from .supervision import FanoutFault, FanoutFaultError, FaultCounters

__all__ = ["CoverageEngine"]

_CFD_PREFIX = "cfd:"

#: Size of the per-engine LRU caches over general-side clause computations
#: (prepared candidate clauses, MD projections, CFD-variant expansions).  One
#: learning run touches at most a few hundred distinct candidates.
_CLAUSE_CACHE_SIZE = 1024

#: Size of the prepared-specific cache.  Sized separately because it also
#: holds the per-example ground MD projections and up to
#: ``max_cfd_expansions`` prepared CFD variants per ground clause — with the
#: default expansion cap of 64 this accommodates ~125 examples' worth of
#: variants before eviction.
_SPECIFIC_CACHE_SIZE = 8192

#: Entry bound on the session-level verdict cache.  Keys are
#: (clause, clause, bool) triples whose hashes are memoised, so entries are
#: cheap; the cap only guards long-lived serving sessions against unbounded
#: growth, and eviction is a wholesale clear (re-proving is what the cache
#: avoids in the steady state, not what correctness depends on).
_VERDICT_CACHE_SIZE = 1 << 16


def _md_projection(clause: HornClause) -> HornClause:
    """Drop CFD repair literals and the non-repair literals they are connected to.

    What remains is the ``C^{md}`` / ``G^{md}`` clause of Section 4.3: all
    literals whose connected repair literals (if any) correspond to MDs.
    """
    cfd_repairs = {
        literal
        for literal in clause.repair_literals
        if literal.provenance and literal.provenance.startswith(_CFD_PREFIX)
    }
    if not cfd_repairs:
        return clause
    keep = []
    for literal in clause.body:
        if literal in cfd_repairs:
            continue
        if not literal.is_repair:
            connected = clause.repair_literals_connected_to(literal)
            if connected & cfd_repairs:
                continue
        keep.append(literal)
    return HornClause(clause.head, tuple(keep)).prune_dangling_restrictions()


def _has_cfd_repairs(clause: HornClause) -> bool:
    return any(
        literal.provenance and literal.provenance.startswith(_CFD_PREFIX)
        for literal in clause.repair_literals
    )


def _chunk_size(n_examples: int, jobs: int) -> int:
    """Per-future chunk length of the thread fan-out: ``n / (4 * jobs)``.

    Four chunks per worker keeps the pool balanced when per-example costs
    are skewed (a straggler chunk idles at most a quarter of one worker's
    share) while cutting the per-future submission overhead ~chunk-size-fold
    against the old one-future-per-example dispatch.
    """
    return max(1, n_examples // (4 * jobs))


class CoverageEngine:
    """Computes example coverage for clauses with repair literals."""

    def __init__(
        self,
        builder: BottomClauseBuilder,
        config: DLearnConfig,
        checker: SubsumptionChecker | None = None,
    ) -> None:
        self.builder = builder
        self.config = config
        checker = checker or SubsumptionChecker()
        use_compiled = checker.use_compiled and config.compiled_subsumption
        use_kernels = checker.vectorized_kernels and config.vectorized_kernels
        if (
            use_compiled != checker.use_compiled
            or use_kernels != checker.vectorized_kernels
            or checker.compiler is None
        ):
            # Clone instead of mutating the caller's instance: a checker
            # passed in may be shared outside this engine, and installing a
            # compiler (or flipping the engine mode) on it would silently
            # couple or reconfigure those other users.
            checker = SubsumptionChecker(
                respect_repair_connectivity=checker.respect_repair_connectivity,
                condition_subset=checker.condition_subset,
                max_steps=checker.max_steps,
                use_compiled=use_compiled,
                vectorized_kernels=use_kernels,
                compiler=checker.compiler or ClauseCompiler(),
            )
        self.checker = checker
        #: Session-level clause compiler: one term interner shared by every
        #: checker the engine drives, so compiled clause forms attached to
        #: the prepared caches stay valid across worker threads.
        self.compiler = self.checker.compiler
        self._ground_cache: dict[tuple[object, ...], PreparedClause] = {}
        self._verdict_cache: dict[tuple[HornClause, HornClause, bool], bool] = {}
        #: Mutation-stamp of the database the cached ground clauses (and the
        #: verdicts derived from them) were built against.  Overlay instances
        #: support in-place delta mutation (a repair inserting or rewriting a
        #: covered tuple), which silently invalidates every example-derived
        #: cache — the stamp check at the prepared-ground funnel detects it.
        self._database = builder.problem.database
        self._database_stamp = self._database.mutation_stamp()
        #: Guards verdict-cache mutation: ``batch_covers`` workers record
        #: verdicts concurrently, and the size-cap eviction (check, clear,
        #: insert) is not atomic without it.
        self._verdict_lock = threading.Lock()
        self._thread_state = threading.local()
        #: Process fan-out (``config.parallel_backend == "process"``): either
        #: attached by the session from the shared
        #: :class:`~repro.core.session.DatabasePreparation` pool, or created
        #: lazily (and then owned) on first process-backend batch.
        self._fanout: ProcessFanout | None = None
        self._fanout_owned = False
        self._fanout_failed = False
        #: Fault/retry/recovery counters of the last process fan-out this
        #: engine drove.  Kept past demotion (the pool is closed then), so
        #: the session's observability survives the pool it describes.
        self._fault_counters: FaultCounters | None = None
        # Pure per-clause computations, memoised for the engine's lifetime.
        # ``lru_cache`` is thread-safe, which is what allows ``batch_covers``
        # to fan example checks out across a worker pool.
        self._prepare_general = lru_cache(maxsize=_CLAUSE_CACHE_SIZE)(self.checker.prepare_general)
        self._prepare_specific = lru_cache(maxsize=_SPECIFIC_CACHE_SIZE)(self.checker.prepare)
        self._md_projection_of = lru_cache(maxsize=_CLAUSE_CACHE_SIZE)(_md_projection)
        self._cfd_variants_of = lru_cache(maxsize=_CLAUSE_CACHE_SIZE)(self._expand_cfd_variants)

    # ------------------------------------------------------------------ #
    # ground bottom clauses
    # ------------------------------------------------------------------ #
    def _ground_key(self, example: Example) -> tuple:
        """Cache key for an example's ground clause: its interned value ids.

        Ids hash and compare as machine integers, so the per-candidate
        per-example cache lookups of the covering loop stop re-hashing the
        example's strings (decoding happens only at clause construction).
        """
        return self.builder.problem.database.intern_values(example.values)

    def prepared_ground(self, example: Example) -> PreparedClause:
        """The example's ground bottom clause, pre-processed for repeated subsumption tests.

        Keyed on the example's *values* only (as an interned id tuple): the
        ground bottom clause is built from the tuples reachable from those
        values, so an example that appears with both labels (e.g. in
        noisy-label experiments) shares one prepared clause.
        """
        self._refresh_if_mutated()
        key = self._ground_key(example)
        if key not in self._ground_cache:
            self._ground_cache[key] = self.checker.prepare(self.builder.build(example, ground=True))
        return self._ground_cache[key]

    def prepared_grounds(self, examples: Sequence[Example]) -> list[PreparedClause]:
        """Prepared ground bottom clauses for many examples, saturating in one batch.

        Uncached examples are gathered through the builder's batched
        multi-example chase (one pass over the database indexes per chase
        depth) before clause preparation; cached examples are simply looked
        up.  Every batched entry point funnels through here, so the covering
        loop, prediction and evaluation all saturate batch-wise.
        """
        self._refresh_if_mutated()
        missing = [example for example in examples if self._ground_key(example) not in self._ground_cache]
        if missing:
            self.builder.gather_relevant_many(missing)
        return [self.prepared_ground(example) for example in examples]

    def ground_bottom_clause(self, example: Example) -> HornClause:
        return self.prepared_ground(example).clause

    def _refresh_if_mutated(self) -> None:
        """Invalidate example-derived caches when the database changed underneath.

        Repairs normally produce *new* (overlay) instances with their own
        engines, but an :class:`~repro.db.overlay.OverlayInstance` can also be
        mutated in place (a repair inserting or rewriting a covered tuple via
        its delta), and a ground bottom clause — and every verdict proved from
        it — built before that mutation is stale.  The stamp comparison is a
        handful of integer reads per call, so it guards every prepared-ground
        funnel entry; on mismatch the ground and verdict caches drop and the
        chase's database-derived memos are invalidated with them.
        """
        stamp = self._database.mutation_stamp()
        if stamp == self._database_stamp:
            return
        with self._verdict_lock:
            if stamp == self._database_stamp:  # another worker refreshed first
                return
            self._ground_cache.clear()
            self._verdict_cache.clear()
            self.builder.chase.invalidate()
            self._database_stamp = stamp

    def reset_verdicts(self) -> None:
        """Drop only the verdict cache, keeping prepared and compiled clause forms.

        Used by benchmarks to measure the steady-state cost of proving fresh
        (clause, example) pairs — compilation amortised, verdicts cold.
        """
        self._verdict_cache.clear()

    def clear_cache(self) -> None:
        self._ground_cache.clear()
        self._verdict_cache.clear()
        self._prepare_general.cache_clear()
        self._prepare_specific.cache_clear()
        self._md_projection_of.cache_clear()
        self._cfd_variants_of.cache_clear()

    # ------------------------------------------------------------------ #
    # clause-level coverage
    # ------------------------------------------------------------------ #
    def covers(self, clause: HornClause | PreparedGeneral, example: Example) -> bool:
        """Coverage of *example* by *clause* under the label-appropriate semantics."""
        ground = self.prepared_ground(example)
        return self._covers_ground(self.checker, self._as_general(clause), ground, positive=example.positive)

    def covers_ground_positive(
        self, clause: HornClause | PreparedGeneral, ground: HornClause | PreparedClause
    ) -> bool:
        """Definition 3.4 via the Section 4.3 procedure."""
        return self._covers_ground(self.checker, self._as_general(clause), self._as_specific(ground), positive=True)

    def covers_ground_negative(
        self, clause: HornClause | PreparedGeneral, ground: HornClause | PreparedClause
    ) -> bool:
        """Definition 3.6 / Proposition 4.10."""
        return self._covers_ground(self.checker, self._as_general(clause), self._as_specific(ground), positive=False)

    # ------------------------------------------------------------------ #
    # batched evaluation
    # ------------------------------------------------------------------ #
    def batch_covers(self, clause: HornClause | PreparedGeneral, examples: Sequence[Example]) -> list[bool]:
        """Coverage verdicts of *clause* for every example, preparing the clause once.

        The general side of the subsumption pipeline (structural split, MD
        projection, CFD-variant expansion) is derived a single time and
        reused for every example; ground bottom clauses come from the
        per-example cache.  With ``config.n_jobs > 1`` the per-example checks
        fan out per ``config.parallel_backend``: chunked over a thread pool
        (every worker thread gets its own :class:`SubsumptionChecker`
        because the step-budget counter is per-instance state), or shipped
        to the GIL-free process pool (:mod:`repro.core.fanout`) as compiled
        integer-plane forms.  ``"serial"`` forces the calling thread — the
        reference oracle for both.
        """
        examples = list(examples)
        if not examples:
            return []
        general = self._as_general(clause)
        # Ground clauses are built on the calling thread (the chase and its
        # caches are not thread-safe), but saturation runs as one batch.
        grounds = self.prepared_grounds(examples)
        jobs = self._effective_jobs(len(examples))
        if jobs <= 1 or self.config.parallel_backend == "serial":
            return [
                self._covers_ground(self.checker, general, ground, positive=example.positive)
                for example, ground in zip(examples, grounds)
            ]
        if self.config.parallel_backend == "process":
            return self._process_batch(general, examples, grounds)
        return self._thread_batch(general, examples, grounds, jobs)

    def _thread_batch(
        self,
        general: PreparedGeneral,
        examples: Sequence[Example],
        grounds: Sequence[PreparedClause],
        jobs: int,
    ) -> list[bool]:
        """Chunked thread fan-out: ~4 chunks per worker instead of per-example futures."""
        pairs = list(zip(examples, grounds))
        size = _chunk_size(len(pairs), jobs)
        chunks = [pairs[start : start + size] for start in range(0, len(pairs), size)]

        def run_chunk(chunk: list[tuple[Example, PreparedClause]]) -> list[bool]:
            checker = self._thread_checker()
            return [
                self._covers_ground(checker, general, ground, positive=example.positive)
                for example, ground in chunk
            ]

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return [verdict for part in pool.map(run_chunk, chunks) for verdict in part]

    def _process_batch(
        self,
        general: PreparedGeneral,
        examples: Sequence[Example],
        grounds: Sequence[PreparedClause],
    ) -> list[bool]:
        """Process-pool fan-out, verdict-cache aware.

        Settled pairs are served from the session verdict cache without
        touching the pool; in-batch duplicates (examples sharing a ground
        clause and label) are proved once.  Returned verdicts merge into the
        cache under the verdict lock, exactly like thread-worker inserts.
        """
        fanout = self._ensure_fanout()
        if fanout is None:
            return self._thread_batch(general, examples, grounds, self._effective_jobs(len(examples)))
        results: list[bool] = [False] * len(examples)
        slots: dict[tuple[HornClause, HornClause, bool], list[int]] = {}
        pending: list[tuple[PreparedClause, bool, tuple[HornClause, HornClause, bool]]] = []
        for index, (example, ground) in enumerate(zip(examples, grounds)):
            key = (general.clause, ground.clause, example.positive)
            cached = self._verdict_cache.get(key)
            if cached is not None:
                results[index] = cached
                continue
            seen = slots.get(key)
            if seen is None:
                slots[key] = [index]
                pending.append((ground, example.positive, key))
            else:
                seen.append(index)
        if not pending:
            return results
        try:
            verdicts = fanout.dispatch(
                [(general, ground, positive) for ground, positive, _ in pending],
                self._fanout_general_bundle,
                self._fanout_ground_bundle,
            )
        except FanoutFaultError as fault:
            # Terminal under the policy: the supervisor already recovered
            # what the budget allowed.  Retire the pool (broken worker and
            # healthy siblings both — attached pools too: leaving them open
            # leaked handles, and the preparation rebuilds closed pools on
            # demand), then walk the remaining ladder rungs.
            self._retire_fanout(fanout)
            mode = self.config.fault_policy.mode
            if mode == "raise":
                raise
            rung = "serial backend" if mode == "degrade_serial" else "thread backend"
            warnings.warn(
                FanoutFault(
                    f"process fan-out demoted after a terminal {fault.kind} fault "
                    f"({fault}); falling back to the {rung}",
                    kind=fault.kind,
                    pool=fault.pool or ProcessFanout.pool_name,
                    attempt=fault.attempt,
                ),
                stacklevel=3,
            )
            if mode == "degrade_serial":
                return [
                    self._covers_ground(self.checker, general, ground, positive=example.positive)
                    for example, ground in zip(examples, grounds)
                ]
            return self._thread_batch(general, examples, grounds, self._effective_jobs(len(examples)))
        with self._verdict_lock:
            for (_, _, key), verdict in zip(pending, verdicts):
                if len(self._verdict_cache) >= _VERDICT_CACHE_SIZE:
                    self._verdict_cache.clear()
                self._verdict_cache[key] = verdict
        for (_, _, key), verdict in zip(pending, verdicts):
            for index in slots[key]:
                results[index] = verdict
        return results

    def covered_counts(
        self,
        clause: HornClause | PreparedGeneral,
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> tuple[int, int]:
        """Covered positive/negative counts through one batched evaluation."""
        flags = self.batch_covers(clause, list(positives) + list(negatives))
        split = len(positives)
        return sum(flags[:split]), sum(flags[split:])

    # ------------------------------------------------------------------ #
    # definition-level coverage and counting
    # ------------------------------------------------------------------ #
    def definition_covers(self, clauses: Iterable[HornClause], example: Example) -> bool:
        """A definition covers an example when at least one clause does (Section 2.1)."""
        return any(self.covers(clause, example) for clause in clauses)

    def predicts_positive(self, clauses: Iterable[HornClause], example: Example) -> bool:
        """Classification rule used at test time: the positive-coverage semantics."""
        ground = self.prepared_ground(example)
        return any(
            self._covers_ground(self.checker, self._as_general(clause), ground, positive=True)
            for clause in clauses
        )

    def batch_predicts_positive(
        self, clauses: Sequence[HornClause | PreparedGeneral], examples: Sequence[Example]
    ) -> list[bool]:
        """Classify many examples against a whole definition, preparing every clause once."""
        prepared_clauses = [self._as_general(clause) for clause in clauses]
        examples = list(examples)
        grounds = self.prepared_grounds(examples)
        jobs = self._effective_jobs(len(examples))

        def classify(checker: SubsumptionChecker, ground: PreparedClause) -> bool:
            return any(
                self._covers_ground(checker, clause, ground, positive=True) for clause in prepared_clauses
            )

        if jobs <= 1 or self.config.parallel_backend == "serial":
            return [classify(self.checker, ground) for ground in grounds]
        # Chunked thread dispatch for both remaining backends: the
        # per-definition ``any`` short-circuits across clauses, which the
        # per-pair process protocol cannot express without proving every
        # (clause, example) pair — the verdict cache still lets a prior
        # process-backend ``batch_covers`` feed these checks.
        size = _chunk_size(len(grounds), jobs)
        chunks = [grounds[start : start + size] for start in range(0, len(grounds), size)]

        def run_chunk(chunk: Sequence[PreparedClause]) -> list[bool]:
            checker = self._thread_checker()
            return [classify(checker, ground) for ground in chunk]

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return [flag for part in pool.map(run_chunk, chunks) for flag in part]

    # ------------------------------------------------------------------ #
    # serial reference path (pre-batching behaviour)
    # ------------------------------------------------------------------ #
    def covers_serial(self, clause: HornClause, example: Example) -> bool:
        """Reference implementation of :meth:`covers` without clause-level caching.

        Re-derives the general side's split, MD projection and CFD variants on
        every call (ground bottom clauses are still cached per example, as
        they always were).  Kept as the ground truth the batched path is
        validated against in tests and measured against in
        ``benchmarks/bench_coverage_batch.py``.
        """
        checker = self.checker
        ground = self.prepared_ground(example)
        if checker.subsumes(clause, ground).subsumes:
            return True
        ground_clause = ground.clause
        clause_has_cfd = _has_cfd_repairs(clause)
        ground_has_cfd = _has_cfd_repairs(ground_clause)
        if not clause_has_cfd and not ground_has_cfd:
            return False
        if example.positive:
            if not checker.subsumes(_md_projection(clause), _md_projection(ground_clause)).subsumes:
                return False
        clause_variants = self._expand_cfd_variants(clause)
        ground_variants = self._expand_cfd_variants(ground_clause)
        quantifier = all if example.positive else any
        return quantifier(
            any(checker.subsumes(cv, gv).subsumes for gv in ground_variants) for cv in clause_variants
        )

    def covered_counts_serial(
        self, clause: HornClause, positives: Sequence[Example], negatives: Sequence[Example]
    ) -> tuple[int, int]:
        """Serial counterpart of :meth:`covered_counts` (see :meth:`covers_serial`)."""
        positives_covered = sum(1 for example in positives if self.covers_serial(clause, example))
        negatives_covered = sum(1 for example in negatives if self.covers_serial(clause, example))
        return positives_covered, negatives_covered

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _covers_ground(
        self,
        checker: SubsumptionChecker,
        general: PreparedGeneral,
        ground: PreparedClause,
        *,
        positive: bool,
    ) -> bool:
        """The Section 4.3 pipeline over prepared clause forms, verdict-cached.

        The verdict is a pure function of (candidate clause, ground clause,
        label semantics); the covering loop scores surviving candidates
        against the full example set round after round, so settled pairs are
        served from the session-level cache instead of being re-proved.
        *checker* is passed explicitly so worker threads can substitute their
        own instance; every clause-level derivation goes through the engine's
        LRU caches.
        """
        # HornClause equality folds body-order variants; that is consistent
        # here because the prepared-clause LRU caches (and the ground cache)
        # fold them the same way, so an order-variant clause is proved
        # through — and cached under — the same prepared form either way.
        key = (general.clause, ground.clause, positive)
        cached = self._verdict_cache.get(key)
        if cached is None:
            # Prove outside the lock (the expensive part, and verdicts are
            # pure so a duplicated proof is only wasted work); mutate under
            # it so eviction and insert stay atomic across worker threads.
            cached = self._prove_ground(checker, general, ground, positive=positive)
            with self._verdict_lock:
                if len(self._verdict_cache) >= _VERDICT_CACHE_SIZE:
                    self._verdict_cache.clear()
                self._verdict_cache[key] = cached
        return cached

    def _prove_ground(
        self,
        checker: SubsumptionChecker,
        general: PreparedGeneral,
        ground: PreparedClause,
        *,
        positive: bool,
    ) -> bool:
        if checker.subsumes(general, ground).subsumes:
            return True
        clause = general.clause
        ground_clause = ground.clause
        if not _has_cfd_repairs(clause) and not _has_cfd_repairs(ground_clause):
            return False
        if positive:
            clause_md = self._prepare_general(self._md_projection_of(clause))
            ground_md = self._prepare_specific(self._md_projection_of(ground_clause))
            if not checker.subsumes(clause_md, ground_md).subsumes:
                return False
        clause_variants = [self._prepare_general(v) for v in self._cfd_variants_of(clause)]
        ground_variants = [self._prepare_specific(v) for v in self._cfd_variants_of(ground_clause)]
        quantifier = all if positive else any
        return quantifier(
            any(checker.subsumes(cv, gv).subsumes for gv in ground_variants) for cv in clause_variants
        )

    def _as_general(self, clause: HornClause | PreparedGeneral) -> PreparedGeneral:
        return clause if isinstance(clause, PreparedGeneral) else self._prepare_general(clause)

    def _as_specific(self, ground: HornClause | PreparedClause) -> PreparedClause:
        return ground if isinstance(ground, PreparedClause) else self._prepare_specific(ground)

    def _expand_cfd_variants(self, clause: HornClause) -> tuple[HornClause, ...]:
        return tuple(
            repaired_clauses(
                clause, only_provenance_prefix=_CFD_PREFIX, max_results=self.config.max_cfd_expansions
            )
        )

    def _effective_jobs(self, n_examples: int) -> int:
        return max(1, min(self.config.n_jobs, n_examples))

    # ------------------------------------------------------------------ #
    # process fan-out plumbing
    # ------------------------------------------------------------------ #
    def attach_fanout(self, fanout: ProcessFanout) -> None:
        """Use a shared (preparation-owned) process fan-out instead of creating one.

        The fan-out must have been built over this engine's compiler interner
        (:meth:`repro.core.session.DatabasePreparation.process_fanout`
        guarantees it).  In healthy operation its lifecycle stays with the
        owner; on a terminal fault the engine *does* close it (see
        :meth:`_retire_fanout`) — a demoted pool is unusable either way and
        the preparation rebuilds closed pools on demand.
        """
        with self._verdict_lock:
            self._fanout = fanout
            self._fanout_owned = False
            self._fanout_failed = False
            self._fault_counters = fanout.supervisor.counters

    @property
    def fault_counters(self) -> FaultCounters | None:
        """Fault/retry/recovery counters of the engine's process fan-out.

        ``None`` until a process pool was attached or created; survives
        demotion so a session can report what its (now closed) pool went
        through.
        """
        return self._fault_counters

    def _retire_fanout(self, fanout: ProcessFanout) -> None:
        """Drop a terminally faulted pool: close every worker, record the demotion."""
        with self._verdict_lock:
            self._fanout = None
            self._fanout_owned = False
            self._fanout_failed = True
        fanout.supervisor.counters.demotions += 1
        fanout.close()

    def _ensure_fanout(self) -> ProcessFanout | None:
        """The engine's process fan-out, created on first use; ``None`` after failure."""
        if self._fanout is not None:
            return self._fanout
        if self._fanout_failed:
            return None
        try:
            fanout = ProcessFanout(
                self.compiler.terms,
                checker_params(self.checker),
                self.config.n_jobs,
                fault_policy=self.config.fault_policy,
                deadline_policy=self.config.deadline_policy,
                chaos=ChaosInjector(self.config.chaos) if self.config.chaos is not None else None,
            )
        except (OSError, PermissionError, ValueError) as error:
            warnings.warn(
                FanoutFault(
                    f"process fan-out unavailable ({error!r}); falling back to the thread backend",
                    kind="seed-failure",
                    pool=ProcessFanout.pool_name,
                    attempt=0,
                ),
                stacklevel=3,
            )
            with self._verdict_lock:
                self._fanout_failed = True
            return None
        with self._verdict_lock:
            self._fanout = fanout
            self._fanout_owned = True
            self._fault_counters = fanout.supervisor.counters
        # Engine-owned pools die with the engine; attached pools belong to
        # the preparation that built them.
        weakref.finalize(self, fanout.close)
        return fanout

    def close(self) -> None:
        """Shut down the engine-owned process fan-out (attached pools stay up)."""
        with self._verdict_lock:
            fanout, owned = self._fanout, self._fanout_owned
            self._fanout = None
            self._fanout_owned = False
        if fanout is not None and owned:
            fanout.close()

    def _fanout_general_bundle(self, general: PreparedGeneral) -> tuple:
        """Wire bundle of a candidate clause: main + (for CFD clauses) MD/variant forms.

        ``None`` entries mean "use the main form" — exact for CFD-free
        clauses, where the MD projection and the CFD expansion are
        identities (see :data:`repro.core.fanout.Bundle`).
        """
        clause = general.clause
        main = general_to_wire(self.compiler.compiled_general_for(general))
        if not _has_cfd_repairs(clause):
            return (main, None, None, False)
        md = self.compiler.compiled_general_for(self._prepare_general(self._md_projection_of(clause)))
        variants = tuple(
            general_to_wire(self.compiler.compiled_general_for(self._prepare_general(v)))
            for v in self._cfd_variants_of(clause)
        )
        return (main, general_to_wire(md), variants, True)

    def _fanout_ground_bundle(self, ground: PreparedClause) -> tuple:
        """Wire bundle of a prepared ground bottom clause (see the general twin)."""
        clause = ground.clause
        main = specific_to_wire(self.compiler.compiled_specific_for(ground))
        if not _has_cfd_repairs(clause):
            return (main, None, None, False)
        md = self.compiler.compiled_specific_for(self._prepare_specific(self._md_projection_of(clause)))
        variants = tuple(
            specific_to_wire(self.compiler.compiled_specific_for(self._prepare_specific(v)))
            for v in self._cfd_variants_of(clause)
        )
        return (main, specific_to_wire(md), variants, True)

    def _thread_checker(self) -> SubsumptionChecker:
        """Per-thread checker clone for pool workers.

        ``SubsumptionChecker`` keeps its step-budget counter on the instance,
        so concurrent searches must not share one checker object.
        """
        checker = getattr(self._thread_state, "checker", None)
        if checker is None:
            checker = SubsumptionChecker(
                respect_repair_connectivity=self.checker.respect_repair_connectivity,
                condition_subset=self.checker.condition_subset,
                max_steps=self.checker.max_steps,
                use_compiled=self.checker.use_compiled,
                vectorized_kernels=self.checker.vectorized_kernels,
                compiler=self.compiler,
            )
            self._thread_state.checker = checker
        return checker
