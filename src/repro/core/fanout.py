"""GIL-free process-pool fan-out over the compiled integer plane.

The ``n_jobs`` thread fan-out of :meth:`repro.core.coverage.CoverageEngine.batch_covers`
contends on the GIL: θ-subsumption search is pure Python bytecode, so worker
threads serialise on the interpreter and four threads buy roughly nothing.
Compiled clause forms, however, are flat ints/tuples by design
(:mod:`repro.logic.compiled`) — exactly the cheap-to-ship shape that lets
the work leave the process:

* each worker process is seeded **once** with the subsumption-checker
  parameters and a read-only snapshot of the session
  :class:`~repro.logic.compiled.TermInterner`'s *is-var* flag plane
  (:class:`~repro.logic.compiled.InternerView` — verdicts never need the
  boxed terms, only the flags);
* a dispatched clause form crosses the process boundary exactly once, as a
  wire tuple (:func:`~repro.logic.compiled.general_to_wire` /
  :func:`~repro.logic.compiled.specific_to_wire`), and is registered in the
  worker under a small integer handle; later dispatches ship only handles;
* the interner is append-only, so each dispatch carries at most a
  *delta* — the flag suffix between the worker's watermark and the parent's
  current one (:meth:`~repro.logic.compiled.TermInterner.snapshot_flags`);
* verdicts flow back as ``(work index, bool)`` pairs and merge into the
  engine's session verdict cache.

Topology: ``n_jobs`` **single-worker** executors instead of one shared
``max_workers=n`` pool.  A single-worker executor is a FIFO queue, which
gives the one ordering guarantee the protocol needs for free — a task that
registers a handle runs before any task that references it — and makes
worker-local state (the handle registries, the interner view watermark)
deterministic.  Ground clauses are routed to a fixed worker on first sight
(round-robin), so each example's (large) prepared form is shipped and held
exactly once across the pool; candidate generals are shipped on demand to
the workers whose grounds they meet.

Verdict parity: a worker proves the same staged search the parent engine
proves (:meth:`~repro.logic.subsumption.SubsumptionChecker.subsumes_pair`
runs the probe valve, certificate sweep, pruned retry and connectivity
retry of ``subsumes``), and the coverage pipeline over the shipped bundles
(:func:`_bundle_verdict`) mirrors ``CoverageEngine._prove_ground`` branch
for branch — so verdicts, and everything downstream of them (retained
lists, learned definitions, predictions), are bit-identical to the serial
path.  ``benchmarks/bench_parallel_fanout.py`` and the property suites
assert this.

Start method: ``fork`` where the platform offers it (no re-import cost,
instant spawn), else ``spawn``; override with the
``REPRO_FANOUT_START_METHOD`` environment variable (``fork`` /
``forkserver`` / ``spawn``).  Workers hold no parent locks — the seeded
view is rebuilt from plain bytes — so forking a session mid-fit is safe.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Sequence, TYPE_CHECKING

from ..logic.compiled import (
    InternerView,
    TermInterner,
    general_from_wire,
    specific_from_wire,
)
from ..logic.subsumption import SubsumptionChecker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..logic.subsumption import PreparedClause, PreparedGeneral

__all__ = ["ProcessFanout", "checker_params"]

#: Environment override for the multiprocessing start method.
_START_METHOD_ENV = "REPRO_FANOUT_START_METHOD"

#: A shipped coverage bundle: ``(main, md, variants, has_cfd)`` where the
#: entries are wire forms.  ``md is None`` means the MD projection *is* the
#: main clause and ``variants is None`` means the CFD expansion is
#: ``(main,)`` — both exact for clauses without CFD repair literals
#: (``_md_projection`` and ``repaired_clauses`` are identities there), so
#: CFD-free clauses ship one wire form instead of three.
Bundle = tuple


def checker_params(checker: SubsumptionChecker) -> dict[str, Any]:
    """The picklable constructor kwargs a worker needs to clone *checker*.

    Only the verdict-relevant knobs travel; the compiler is deliberately
    absent (workers receive compiled forms, never clauses) and
    ``use_compiled`` is forced — the process backend *is* the compiled
    engine, there is no boxed-term path on the far side.
    """
    return {
        "respect_repair_connectivity": checker.respect_repair_connectivity,
        "condition_subset": checker.condition_subset,
        "max_steps": checker.max_steps,
        "use_compiled": True,
        "vectorized_kernels": checker.vectorized_kernels,
    }


def _start_method() -> str:
    override = os.environ.get(_START_METHOD_ENV)
    if override:
        return override
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
# Module-level state, seeded once per worker process by the executor
# initializer.  Everything submitted to the pool is a module-level function
# over this state — no closures, no captured locks or handles (arch-lint
# rule PF01 enforces this shape).

_STATE: dict[str, Any] = {}


def _seed_worker(params: dict[str, Any], snapshot: tuple[int, int, bytes]) -> None:
    """Executor initializer: build the worker's checker and interner view."""
    view = InternerView()
    view.extend(*snapshot)
    _STATE["terms"] = view
    _STATE["checker"] = SubsumptionChecker(**params)
    _STATE["generals"] = {}
    _STATE["grounds"] = {}


def _decode_general(bundle: Bundle, terms: TermInterner) -> tuple:
    main, md, variants, has_cfd = bundle
    return (
        general_from_wire(main, terms),
        general_from_wire(md, terms) if md is not None else None,
        tuple(general_from_wire(v, terms) for v in variants) if variants is not None else None,
        has_cfd,
    )


def _decode_specific(bundle: Bundle, terms: TermInterner) -> tuple:
    main, md, variants, has_cfd = bundle
    return (
        specific_from_wire(main, terms),
        specific_from_wire(md, terms) if md is not None else None,
        tuple(specific_from_wire(v, terms) for v in variants) if variants is not None else None,
        has_cfd,
    )


def _bundle_verdict(checker: SubsumptionChecker, general: tuple, ground: tuple, positive: bool) -> bool:
    """The Section 4.3 coverage pipeline over decoded bundles.

    Mirrors ``CoverageEngine._prove_ground`` exactly — direct subsumption,
    the both-sides-CFD-free early False, the positive-only MD-projection
    check, then the all/any CFD-variant quantifier — with every subsumption
    through the same staged compiled search the parent runs.
    """
    g_main, g_md, g_variants, g_cfd = general
    s_main, s_md, s_variants, s_cfd = ground
    if checker.subsumes_pair(g_main, s_main):
        return True
    if not g_cfd and not s_cfd:
        return False
    if positive and not checker.subsumes_pair(
        g_md if g_md is not None else g_main,
        s_md if s_md is not None else s_main,
    ):
        return False
    clause_variants = g_variants if g_variants is not None else (g_main,)
    ground_variants = s_variants if s_variants is not None else (s_main,)
    quantifier = all if positive else any
    return quantifier(
        any(checker.subsumes_pair(cv, gv) for gv in ground_variants) for cv in clause_variants
    )


def _run_chunk(task: tuple) -> list[tuple[int, bool]]:
    """One dispatched work chunk: apply the delta, register bundles, prove pairs."""
    delta, generals, grounds, work = task
    terms: InternerView = _STATE["terms"]
    if delta is not None:
        terms.extend(*delta)
    general_registry: dict[int, tuple] = _STATE["generals"]
    ground_registry: dict[int, tuple] = _STATE["grounds"]
    for handle, bundle in generals:
        general_registry[handle] = _decode_general(bundle, terms)
    for handle, bundle in grounds:
        ground_registry[handle] = _decode_specific(bundle, terms)
    checker: SubsumptionChecker = _STATE["checker"]
    return [
        (idx, _bundle_verdict(checker, general_registry[gh], ground_registry[sh], positive))
        for idx, gh, sh, positive in work
    ]


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #
class ProcessFanout:
    """A pool of seeded worker processes proving coverage pairs.

    Owns ``n_jobs`` single-worker executors plus the parent-side shipping
    state: clause → handle maps, per-worker shipped-handle sets and interner
    watermarks, and the ground → worker routing table.  Not thread-safe —
    one dispatch at a time, from the thread driving the batch (the engine's
    batched entry points already run on the calling thread).

    The pool is cheap to create (worker processes spawn lazily on first
    dispatch) and safe to share across engines and sessions that compile
    through the same :class:`~repro.logic.compiled.ClauseCompiler`
    (:meth:`repro.core.session.DatabasePreparation.process_fanout` memoises
    exactly that sharing).
    """

    def __init__(
        self,
        interner: TermInterner,
        params: dict[str, Any],
        n_jobs: int,
        *,
        start_method: str | None = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        context = multiprocessing.get_context(start_method or _start_method())
        self.n_jobs = n_jobs
        self._interner = interner
        snapshot = interner.snapshot_flags(0)
        self._workers = [
            ProcessPoolExecutor(
                max_workers=1,
                mp_context=context,
                initializer=_seed_worker,
                initargs=(dict(params), snapshot),
            )
            for _ in range(n_jobs)
        ]
        self._watermarks = [snapshot[1]] * n_jobs
        self._shipped_generals: list[set[int]] = [set() for _ in range(n_jobs)]
        self._shipped_grounds: list[set[int]] = [set() for _ in range(n_jobs)]
        self._general_ids: dict[object, int] = {}
        self._ground_ids: dict[object, int] = {}
        #: Handle → wire bundle for generals only: a general may meet new
        #: grounds routed to workers it has not visited yet.  Ground bundles
        #: are shipped to their routed worker immediately and never kept.
        self._general_wires: dict[int, Bundle] = {}
        #: Ground handle → worker index, fixed at first sight (round-robin).
        self._route: dict[int, int] = {}
        self._next_worker = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    def dispatch(
        self,
        pairs: Sequence[tuple],
        build_general: "Callable[[PreparedGeneral], Bundle]",
        build_ground: "Callable[[PreparedClause], Bundle]",
    ) -> list[bool]:
        """Prove every ``(prepared general, prepared ground, positive)`` pair.

        Bundle builders run in the parent and may intern new terms (they
        compile MD projections and CFD variants on first sight); the
        interner deltas are therefore snapshotted strictly *after* all
        building, so every id a shipped wire form references is covered by
        the worker's view before the work runs — the single-worker FIFO
        guarantees registration precedes use within the task itself.
        """
        if self._closed:
            raise RuntimeError("ProcessFanout is closed")
        n_jobs = self.n_jobs
        tasks: list[tuple[list, list, list]] = [([], [], []) for _ in range(n_jobs)]
        for idx, (general, ground, positive) in enumerate(pairs):
            gh = self._general_ids.get(general.clause)
            if gh is None:
                gh = len(self._general_ids)
                self._general_ids[general.clause] = gh
                self._general_wires[gh] = build_general(general)
            sh = self._ground_ids.get(ground.clause)
            ground_wire: Bundle | None = None
            if sh is None:
                sh = len(self._ground_ids)
                self._ground_ids[ground.clause] = sh
                ground_wire = build_ground(ground)
            worker = self._route.get(sh)
            if worker is None:
                worker = self._next_worker % n_jobs
                self._next_worker += 1
                self._route[sh] = worker
            generals, grounds, work = tasks[worker]
            if gh not in self._shipped_generals[worker]:
                self._shipped_generals[worker].add(gh)
                generals.append((gh, self._general_wires[gh]))
            if sh not in self._shipped_grounds[worker]:
                self._shipped_grounds[worker].add(sh)
                grounds.append((sh, ground_wire if ground_wire is not None else build_ground(ground)))
            work.append((idx, gh, sh, positive))

        futures: list[Future] = []
        for worker, (generals, grounds, work) in enumerate(tasks):
            if not work:
                continue
            start, mark, flags = self._interner.snapshot_flags(self._watermarks[worker])
            delta = (start, mark, flags) if mark > start else None
            self._watermarks[worker] = mark
            futures.append(
                self._workers[worker].submit(
                    _run_chunk, (delta, tuple(generals), tuple(grounds), tuple(work))
                )
            )
        verdicts = [False] * len(pairs)
        for future in futures:
            for idx, verdict in future.result():
                verdicts[idx] = verdict
        return verdicts

    def warm(self) -> None:
        """Spawn and seed every worker now (benchmarks time dispatch, not forking)."""
        empty = (None, (), (), ())
        for future in [worker.submit(_run_chunk, empty) for worker in self._workers]:
            future.result()

    def close(self) -> None:
        """Shut the worker processes down; the fan-out is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ProcessFanout({self.n_jobs} workers, {state})"
