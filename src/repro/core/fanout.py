"""GIL-free process-pool fan-out over the compiled integer plane.

The ``n_jobs`` thread fan-out of :meth:`repro.core.coverage.CoverageEngine.batch_covers`
contends on the GIL: θ-subsumption search is pure Python bytecode, so worker
threads serialise on the interpreter and four threads buy roughly nothing.
Compiled clause forms, however, are flat ints/tuples by design
(:mod:`repro.logic.compiled`) — exactly the cheap-to-ship shape that lets
the work leave the process:

* each worker process is seeded **once** with the subsumption-checker
  parameters and a read-only snapshot of the session
  :class:`~repro.logic.compiled.TermInterner`'s *is-var* flag plane
  (:class:`~repro.logic.compiled.InternerView` — verdicts never need the
  boxed terms, only the flags);
* a dispatched clause form crosses the process boundary exactly once, as a
  wire tuple (:func:`~repro.logic.compiled.general_to_wire` /
  :func:`~repro.logic.compiled.specific_to_wire`), and is registered in the
  worker under a small integer handle; later dispatches ship only handles;
* the interner is append-only, so each dispatch carries at most a
  *delta* — the flag suffix between the worker's watermark and the parent's
  current one (:meth:`~repro.logic.compiled.TermInterner.snapshot_flags`);
* verdicts flow back as ``(work index, bool)`` pairs and merge into the
  engine's session verdict cache.

Topology: ``n_jobs`` **single-worker** executors instead of one shared
``max_workers=n`` pool.  A single-worker executor is a FIFO queue, which
gives the one ordering guarantee the protocol needs for free — a task that
registers a handle runs before any task that references it — and makes
worker-local state (the handle registries, the interner view watermark)
deterministic.  Ground clauses are routed to a fixed worker on first sight
(round-robin), so each example's (large) prepared form is shipped and held
exactly once across the pool; candidate generals are shipped on demand to
the workers whose grounds they meet.

Verdict parity: a worker proves the same staged search the parent engine
proves (:meth:`~repro.logic.subsumption.SubsumptionChecker.subsumes_pair`
runs the probe valve, certificate sweep, pruned retry and connectivity
retry of ``subsumes``), and the coverage pipeline over the shipped bundles
(:func:`_bundle_verdict`) mirrors ``CoverageEngine._prove_ground`` branch
for branch — so verdicts, and everything downstream of them (retained
lists, learned definitions, predictions), are bit-identical to the serial
path.  ``benchmarks/bench_parallel_fanout.py`` and the property suites
assert this.

Start method: ``fork`` where the platform offers it (no re-import cost,
instant spawn), else ``spawn``; override with the
``REPRO_FANOUT_START_METHOD`` environment variable (``fork`` /
``forkserver`` / ``spawn``).  Workers hold no parent locks — the seeded
view is rebuilt from plain bytes — so forking a session mid-fit is safe.

This module also hosts the **saturation scatter/gather**
(:class:`SaturationFanout`): the same seeded-worker topology pointed at the
chase instead of coverage.  Each worker owns one row-wise shard of every
relation (:mod:`repro.db.sharding`) and answers the per-depth id-frontier
probes of :meth:`repro.core.saturation.FrontierChase.relevant_many` locally
against its shard's insert-time indexes; the parent merges the disjoint
per-shard answers into exactly the probe tables the unsharded prefetch
builds, so everything downstream — dedup on canonical rows, state updates,
learned definitions — is bit-identical to the serial chase.  Shards cross
the boundary once as byte wire forms; later dispatches carry interner flag
deltas, row-append deltas, and the frontier.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Sequence, TYPE_CHECKING

from ..db.interning import ValueId
from ..db.sharding import RelationShard, ShardWire, ShardedInstance, ValueInternerView
from ..logic.compiled import (
    InternerView,
    TermInterner,
    general_from_wire,
    specific_from_wire,
)
from ..logic.subsumption import SubsumptionChecker
from ..testing.chaos import CORRUPT_WIRE, ChaosInjector, chaos_from_env
from .supervision import (
    DeadlinePolicy,
    FaultPolicy,
    PoolSupervisor,
    WorkerJob,
    terminate_executor,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..logic.subsumption import PreparedClause, PreparedGeneral

__all__ = ["ProcessFanout", "SaturationFanout", "SerialShardScatter", "checker_params"]

#: Environment override for the multiprocessing start method.
_START_METHOD_ENV = "REPRO_FANOUT_START_METHOD"

#: A shipped coverage bundle: ``(main, md, variants, has_cfd)`` where the
#: entries are wire forms.  ``md is None`` means the MD projection *is* the
#: main clause and ``variants is None`` means the CFD expansion is
#: ``(main,)`` — both exact for clauses without CFD repair literals
#: (``_md_projection`` and ``repaired_clauses`` are identities there), so
#: CFD-free clauses ship one wire form instead of three.
Bundle = tuple


def checker_params(checker: SubsumptionChecker) -> dict[str, Any]:
    """The picklable constructor kwargs a worker needs to clone *checker*.

    Only the verdict-relevant knobs travel; the compiler is deliberately
    absent (workers receive compiled forms, never clauses) and
    ``use_compiled`` is forced — the process backend *is* the compiled
    engine, there is no boxed-term path on the far side.
    """
    return {
        "respect_repair_connectivity": checker.respect_repair_connectivity,
        "condition_subset": checker.condition_subset,
        "max_steps": checker.max_steps,
        "use_compiled": True,
        "vectorized_kernels": checker.vectorized_kernels,
    }


def _start_method() -> str:
    override = os.environ.get(_START_METHOD_ENV)
    if override:
        return override
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
# Module-level state, seeded once per worker process by the executor
# initializer.  Everything submitted to the pool is a module-level function
# over this state — no closures, no captured locks or handles (arch-lint
# rule PF01 enforces this shape).

_STATE: dict[str, Any] = {}


def _seed_worker(params: dict[str, Any], snapshot: tuple[int, int, bytes]) -> None:
    """Executor initializer: build the worker's checker and interner view."""
    view = InternerView()
    view.extend(*snapshot)
    _STATE["terms"] = view
    _STATE["checker"] = SubsumptionChecker(**params)
    _STATE["generals"] = {}
    _STATE["grounds"] = {}


def _decode_general(bundle: Bundle, terms: TermInterner) -> tuple:
    main, md, variants, has_cfd = bundle
    return (
        general_from_wire(main, terms),
        general_from_wire(md, terms) if md is not None else None,
        tuple(general_from_wire(v, terms) for v in variants) if variants is not None else None,
        has_cfd,
    )


def _decode_specific(bundle: Bundle, terms: TermInterner) -> tuple:
    main, md, variants, has_cfd = bundle
    return (
        specific_from_wire(main, terms),
        specific_from_wire(md, terms) if md is not None else None,
        tuple(specific_from_wire(v, terms) for v in variants) if variants is not None else None,
        has_cfd,
    )


def _bundle_verdict(checker: SubsumptionChecker, general: tuple, ground: tuple, positive: bool) -> bool:
    """The Section 4.3 coverage pipeline over decoded bundles.

    Mirrors ``CoverageEngine._prove_ground`` exactly — direct subsumption,
    the both-sides-CFD-free early False, the positive-only MD-projection
    check, then the all/any CFD-variant quantifier — with every subsumption
    through the same staged compiled search the parent runs.
    """
    g_main, g_md, g_variants, g_cfd = general
    s_main, s_md, s_variants, s_cfd = ground
    if checker.subsumes_pair(g_main, s_main):
        return True
    if not g_cfd and not s_cfd:
        return False
    if positive and not checker.subsumes_pair(
        g_md if g_md is not None else g_main,
        s_md if s_md is not None else s_main,
    ):
        return False
    clause_variants = g_variants if g_variants is not None else (g_main,)
    ground_variants = s_variants if s_variants is not None else (s_main,)
    quantifier = all if positive else any
    return quantifier(
        any(checker.subsumes_pair(cv, gv) for gv in ground_variants) for cv in clause_variants
    )


def _apply_chaos(directive: tuple | None) -> None:
    """Execute a chaos directive shipped inside a task payload.

    Directives are plain data (PF01-picklable) injected parent-side by
    :mod:`repro.testing.chaos`, one-shot per chunk — a recovered worker's
    retry payload never carries one.  ``("kill",)`` is kill -9 semantics:
    no cleanup, no exception, the parent sees a broken pool.  ``("delay",
    seconds)`` holds the chunk past its dispatch deadline.
    """
    if directive is None:
        return
    if directive[0] == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif directive[0] == "delay":
        time.sleep(directive[1])


def _run_chunk(task: tuple) -> list[tuple[int, bool]]:
    """One dispatched work chunk: apply the delta, register bundles, prove pairs."""
    delta, generals, grounds, work, chaos = task
    _apply_chaos(chaos)
    terms: InternerView = _STATE["terms"]
    if delta is not None:
        terms.extend(*delta)
    general_registry: dict[int, tuple] = _STATE["generals"]
    ground_registry: dict[int, tuple] = _STATE["grounds"]
    for handle, bundle in generals:
        general_registry[handle] = _decode_general(bundle, terms)
    for handle, bundle in grounds:
        ground_registry[handle] = _decode_specific(bundle, terms)
    checker: SubsumptionChecker = _STATE["checker"]
    return [
        (idx, _bundle_verdict(checker, general_registry[gh], ground_registry[sh], positive))
        for idx, gh, sh, positive in work
    ]


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #
class ProcessFanout:
    """A pool of seeded worker processes proving coverage pairs.

    Owns ``n_jobs`` single-worker executors plus the parent-side shipping
    state: clause → handle maps, per-worker shipped-handle sets and interner
    watermarks, and the ground → worker routing table.  Not thread-safe —
    one dispatch at a time, from the thread driving the batch (the engine's
    batched entry points already run on the calling thread).

    The pool is cheap to create (worker processes spawn lazily on first
    dispatch) and safe to share across engines and sessions that compile
    through the same :class:`~repro.logic.compiled.ClauseCompiler`
    (:meth:`repro.core.session.DatabasePreparation.process_fanout` memoises
    exactly that sharing).

    Dispatches run supervised (:class:`~repro.core.supervision.PoolSupervisor`):
    every await carries a :class:`~repro.core.supervision.DeadlinePolicy`
    timeout, and a crashed, hung or desynchronised worker is killed,
    respawned from the current interner snapshot, its registration log
    replayed from the retained wire bundles (:meth:`_recover_worker`), and
    only the lost chunk re-dispatched.  Routing (:attr:`_route`) survives
    recovery untouched, so verdict identity is preserved by construction.
    """

    #: Pool name in fault taxonomy warnings and session fault counters.
    pool_name = "coverage"

    def __init__(
        self,
        interner: TermInterner,
        params: dict[str, Any],
        n_jobs: int,
        *,
        start_method: str | None = None,
        fault_policy: FaultPolicy | None = None,
        deadline_policy: DeadlinePolicy | None = None,
        chaos: ChaosInjector | None = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self._context = multiprocessing.get_context(start_method or _start_method())
        self.n_jobs = n_jobs
        self._interner = interner
        self._params = dict(params)
        self.supervisor = PoolSupervisor(
            self.pool_name, fault_policy=fault_policy, deadline_policy=deadline_policy
        )
        self._chaos = chaos if chaos is not None else chaos_from_env()
        snapshot = interner.snapshot_flags(0)
        self._workers = [self._new_worker(snapshot) for _ in range(n_jobs)]
        self._watermarks = [snapshot[1]] * n_jobs
        self._shipped_generals: list[set[int]] = [set() for _ in range(n_jobs)]
        self._shipped_grounds: list[set[int]] = [set() for _ in range(n_jobs)]
        self._general_ids: dict[object, int] = {}
        self._ground_ids: dict[object, int] = {}
        #: Handle → wire bundle, both planes.  Generals because a general
        #: may meet new grounds routed to workers it has not visited yet;
        #: grounds because crash recovery replays a worker's registration
        #: log from the parent's retained wires (and rehoming after
        #: :meth:`reset_routing` re-ships from here instead of rebuilding).
        self._general_wires: dict[int, Bundle] = {}
        self._ground_wires: dict[int, Bundle] = {}
        #: Ground handle → worker index, fixed at first sight (round-robin).
        self._route: dict[int, int] = {}
        self._next_worker = 0
        self._closed = False

    def _new_worker(self, snapshot: tuple[int, int, bytes]) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._context,
            initializer=_seed_worker,
            initargs=(dict(self._params), snapshot),
        )

    # ------------------------------------------------------------------ #
    def dispatch(
        self,
        pairs: Sequence[tuple],
        build_general: "Callable[[PreparedGeneral], Bundle]",
        build_ground: "Callable[[PreparedClause], Bundle]",
    ) -> list[bool]:
        """Prove every ``(prepared general, prepared ground, positive)`` pair.

        Bundle builders run in the parent and may intern new terms (they
        compile MD projections and CFD variants on first sight); the
        interner deltas are therefore snapshotted strictly *after* all
        building, so every id a shipped wire form references is covered by
        the worker's view before the work runs — the single-worker FIFO
        guarantees registration precedes use within the task itself.
        """
        if self._closed:
            raise RuntimeError("ProcessFanout is closed")
        n_jobs = self.n_jobs
        tasks: list[tuple[list, list, list]] = [([], [], []) for _ in range(n_jobs)]
        for idx, (general, ground, positive) in enumerate(pairs):
            gh = self._general_ids.get(general.clause)
            if gh is None:
                gh = len(self._general_ids)
                self._general_ids[general.clause] = gh
                self._general_wires[gh] = build_general(general)
            sh = self._ground_ids.get(ground.clause)
            if sh is None:
                sh = len(self._ground_ids)
                self._ground_ids[ground.clause] = sh
                self._ground_wires[sh] = build_ground(ground)
            worker = self._route.get(sh)
            if worker is None:
                worker = self._next_worker % n_jobs
                self._next_worker += 1
                self._route[sh] = worker
            generals, grounds, work = tasks[worker]
            if gh not in self._shipped_generals[worker]:
                self._shipped_generals[worker].add(gh)
                generals.append((gh, self._general_wires[gh]))
            if sh not in self._shipped_grounds[worker]:
                self._shipped_grounds[worker].add(sh)
                grounds.append((sh, self._ground_wires[sh]))
            work.append((idx, gh, sh, positive))

        jobs: list[WorkerJob] = []
        for worker, (generals, grounds, work) in enumerate(tasks):
            if not work:
                continue
            start, mark, flags = self._interner.snapshot_flags(self._watermarks[worker])
            delta = (start, mark, flags) if mark > start else None
            self._watermarks[worker] = mark
            directive = None
            if self._chaos is not None:
                faults = self._chaos.chunk_faults()
                directive = faults.directive
                if faults.drop_delta:
                    delta = None
                if faults.corrupt_wire:
                    if grounds:
                        grounds = self._chaos.corrupt_bundles(grounds)
                    else:
                        generals = self._chaos.corrupt_bundles(generals)
            jobs.append(
                WorkerJob(
                    worker=worker,
                    payload=(delta, tuple(generals), tuple(grounds), tuple(work), directive),
                    # A recovered worker is reseeded from the current full
                    # snapshot and replayed every shipped bundle, so the
                    # retry needs neither delta nor registrations.
                    retry_payload=(None, (), (), tuple(work), None),
                    units=len(work),
                )
            )
        verdicts = [False] * len(pairs)
        for part in self.supervisor.run(jobs, self._submit, self._recover_worker):
            for idx, verdict in part:
                verdicts[idx] = verdict
        return verdicts

    # ------------------------------------------------------------------ #
    def _submit(self, worker: int, payload: tuple) -> Future:
        return self._workers[worker].submit(_run_chunk, payload)

    def _recover_worker(self, worker: int) -> None:
        """Respawn worker *worker* and replay its registration log.

        The old executor is hard-terminated (a hung worker must not linger),
        a fresh single-worker executor is seeded from the *current* interner
        snapshot, and every bundle the dead worker had registered — by the
        shipped-handle sets, which were updated when the lost chunk was
        built — is re-shipped from the parent's retained wires in one replay
        task.  FIFO ordering guarantees the replay lands before the retried
        chunk; handle order is sorted, so registration is deterministic.
        Routing is deliberately untouched: verdicts are routing-independent,
        and the surviving workers' state is exactly as shipped.
        """
        terminate_executor(self._workers[worker])
        snapshot = self._interner.snapshot_flags(0)
        self._workers[worker] = self._new_worker(snapshot)
        self._watermarks[worker] = snapshot[1]
        generals = tuple(
            (handle, self._general_wires[handle])
            for handle in sorted(self._shipped_generals[worker])
        )
        grounds = tuple(
            (handle, self._ground_wires[handle])
            for handle in sorted(self._shipped_grounds[worker])
        )
        if generals or grounds:
            self._workers[worker].submit(_run_chunk, (None, generals, grounds, (), None))

    def warm(self) -> None:
        """Spawn and seed every worker now (benchmarks time dispatch, not forking)."""
        empty = (None, (), (), (), None)
        timeout = self.supervisor.deadline_policy.timeout_for(0)
        for future in [worker.submit(_run_chunk, empty) for worker in self._workers]:
            future.result(timeout=timeout)

    def reset_routing(self) -> None:
        """Forget the ground → worker pinning; the next dispatch rebalances.

        Grounds are pinned to a worker on first sight, which is the right
        call while a pool lives — the (large) prepared ground ships once —
        but the pinning would otherwise outlive its balance: a long-lived
        fan-out re-used across sessions (or compared against a different
        ``n_jobs``) keeps early grounds crowded onto the first workers.
        Resetting only drops the routing table and the round-robin cursor.
        The shipped-handle bookkeeping survives deliberately: a rehomed
        ground is re-shipped to its new worker on demand by :meth:`dispatch`
        from the parent's retained wire, and the stale copy on the old
        worker is simply never referenced again.  Verdicts are
        routing-independent, so rebalancing cannot change them.
        """
        self._route.clear()
        self._next_worker = 0

    def close(self) -> None:
        """Shut the worker processes down; the fan-out is unusable afterwards.

        Idempotent, and hard: worker processes are killed, not merely asked
        to wind down — a close after a fault (the degradation ladder closes
        demoted pools, healthy siblings included) must not leave a hung
        worker blocking interpreter exit.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            terminate_executor(worker)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ProcessFanout({self.n_jobs} workers, {state})"


# --------------------------------------------------------------------------- #
# saturation scatter/gather: worker side
# --------------------------------------------------------------------------- #
# Separate module-level state from the coverage plane: a process can in
# principle serve both (coverage chunks and chase depths), and the two
# protocols must not see each other's registries.

_SHARD_STATE: dict[str, Any] = {}

#: Membership answers from one worker: ``(relation name, ((key, rows), ...))``
#: pairs, non-empty keys only — the per-shard slice of ``any_rows_table``.
_MembershipPart = tuple[tuple[str, tuple[tuple[ValueId, frozenset[int]], ...]], ...]
#: Equality answers from one worker: ``((relation name, position), ((key, rows), ...))``.
_EqualityPart = tuple[tuple[tuple[str, int], tuple[tuple[ValueId, tuple[int, ...]], ...]], ...]

#: The probe tables one chase depth runs on, in parent terms: membership
#: tables per relation name (``any_rows_table`` shape: only non-empty keys,
#: but every requested relation present), and equality rows keyed
#: ``(relation name, attribute name, key id)``.
DepthTables = tuple[
    dict[str, dict[ValueId, frozenset[int]]],
    dict[tuple[str, str, ValueId], tuple[int, ...]],
]


def _seed_shard_worker(wires: tuple[ShardWire, ...], snapshot: tuple[int, int, bytes]) -> None:
    """Executor initializer: rebuild this worker's shards and flag view."""
    view = ValueInternerView()
    view.extend(*snapshot)
    _SHARD_STATE["values"] = view
    _SHARD_STATE["shards"] = {wire[0]: RelationShard.from_wire(wire) for wire in wires}


def _run_depth(task: tuple) -> tuple[_MembershipPart, _EqualityPart]:
    """One dispatched chase depth: apply deltas, probe the local shards.

    ``task`` is ``(delta, resets, extends, names, frontier, equal_probes,
    chaos)``: the interner flag delta, full shard wires to replace (an
    overlay delta rewrote rows — rebuilds carry a new generation),
    row-append deltas, the relation names to probe, the ascending
    id-frontier, ``(name, position, keys)`` equality probes, and an
    optional chaos directive (:func:`_apply_chaos`).  Probes run against
    the shard's insert-time indexes — the same index-routed lookups the
    unsharded relation answers, restricted to this shard's rows.
    """
    delta, resets, extends, names, frontier, equal_probes, chaos = task
    _apply_chaos(chaos)
    values: ValueInternerView = _SHARD_STATE["values"]
    if delta is not None:
        values.extend(*delta)
    shards: dict[str, RelationShard] = _SHARD_STATE["shards"]
    for wire in resets:
        shards[wire[0]] = RelationShard.from_wire(wire)
    for name, rows in extends:
        shards[name].extend_rows(rows)
    if frontier and frontier[-1] >= len(values):
        raise RuntimeError(
            f"shard worker desynchronised: frontier id {frontier[-1]} is beyond "
            f"the interner view watermark {len(values)} — an interner delta was lost"
        )
    membership = tuple(
        (name, tuple(shards[name].membership_hits(frontier))) for name in names
    )
    equality = tuple(
        ((name, position), tuple(shards[name].equality_hits(position, keys)))
        for name, position, keys in equal_probes
    )
    return membership, equality


# --------------------------------------------------------------------------- #
# saturation scatter/gather: parent side
# --------------------------------------------------------------------------- #
class SaturationFanout:
    """Shard workers answering the chase's per-depth probes in parallel.

    One single-worker executor per shard (the same FIFO topology as
    :class:`ProcessFanout`: a task that applies a row delta runs before any
    task probing it).  Workers are seeded once with their shard wires and
    the interner flag snapshot; each :meth:`depth_tables` dispatch carries
    only what changed since — interner flag deltas, appended rows (or a
    full shard re-ship when an overlay delta rewrote rows), the frontier
    and the equality probes.  The gather merges the disjoint per-shard
    answers with :mod:`repro.db.sharding`'s order-exact merges, so the
    returned tables equal the unsharded prefetch's tables key for key.

    Not thread-safe — one dispatch at a time, from the thread driving the
    chase (which is how :class:`~repro.core.saturation.FrontierChase`
    calls it).

    Dispatches run supervised, like :class:`ProcessFanout`'s: deadlines on
    every await, and a crashed, hung or desynchronised shard worker is
    killed and respawned seeded with its shard's *current* wire forms and
    the current interner snapshot (:meth:`_recover_worker` — a full
    re-seed genuinely repairs a lost delta, which is why desync faults
    recover here instead of propagating).  The shard index is positional,
    so recovery cannot change which rows a worker answers for.
    """

    #: Pool name in fault taxonomy warnings and session fault counters.
    pool_name = "saturation"

    def __init__(
        self,
        sharded: ShardedInstance,
        *,
        start_method: str | None = None,
        fault_policy: FaultPolicy | None = None,
        deadline_policy: DeadlinePolicy | None = None,
        chaos: ChaosInjector | None = None,
    ) -> None:
        self._context = multiprocessing.get_context(start_method or _start_method())
        self.sharded = sharded
        self.shard_count = sharded.shard_count
        self.supervisor = PoolSupervisor(
            self.pool_name, fault_policy=fault_policy, deadline_policy=deadline_policy
        )
        self._chaos = chaos if chaos is not None else chaos_from_env()
        snapshot = sharded.interner_snapshot(0)
        self._workers = [self._new_worker(index, snapshot) for index in range(self.shard_count)]
        self._watermarks = [snapshot[1]] * self.shard_count
        relations = sharded.shard_relations()
        self._generations: list[dict[str, int]] = [
            {name: rel.generation for name, rel in relations.items()}
            for _ in range(self.shard_count)
        ]
        self._shipped_rows: list[dict[str, int]] = [
            {name: len(rel.shards[index]) for name, rel in relations.items()}
            for index in range(self.shard_count)
        ]
        self._closed = False

    def _new_worker(self, index: int, snapshot: tuple[int, int, bytes]) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._context,
            initializer=_seed_shard_worker,
            initargs=(self.sharded.wire_shard(index), snapshot),
        )

    # ------------------------------------------------------------------ #
    def _shard_deltas(self, index: int) -> tuple[tuple[ShardWire, ...], tuple]:
        """What worker *index* is missing: full re-ships and row appends."""
        resets: list[ShardWire] = []
        extends: list[tuple[str, tuple]] = []
        generations = self._generations[index]
        shipped = self._shipped_rows[index]
        for name, sharded_rel in self.sharded.shard_relations().items():
            shard = sharded_rel.shards[index]
            if generations.get(name) != sharded_rel.generation:
                resets.append(shard.to_wire())
                generations[name] = sharded_rel.generation
                shipped[name] = len(shard)
                continue
            have = shipped.get(name, 0)
            if len(shard) > have:
                extends.append((name, tuple(shard.id_rows(have))))
                shipped[name] = len(shard)
        return tuple(resets), tuple(extends)

    def depth_tables(
        self,
        names: tuple[str, ...],
        frontier: tuple[ValueId, ...],
        equal_probes: tuple[tuple[str, str, int, tuple[ValueId, ...]], ...],
    ) -> DepthTables:
        """Scatter one depth's probes to the shard workers and gather the union.

        *names* are the relations to probe for frontier membership,
        *frontier* the ascending id-frontier, *equal_probes* the MD
        partner-key lookups as ``(relation, attribute, position, keys)``.
        The attribute name stays parent-side (workers probe by position);
        it keys the gathered equality table the way the chase consumes it.
        """
        if self._closed:
            raise RuntimeError("SaturationFanout is closed")
        self.sharded.sync()
        wire_probes = tuple((name, position, keys) for name, _, position, keys in equal_probes)
        jobs: list[WorkerJob] = []
        for index in range(self.shard_count):
            resets, extends = self._shard_deltas(index)
            start, mark, flags = self.sharded.interner_snapshot(self._watermarks[index])
            delta = (start, mark, flags) if mark > start else None
            self._watermarks[index] = mark
            directive = None
            if self._chaos is not None:
                faults = self._chaos.chunk_faults()
                directive = faults.directive
                if faults.drop_delta:
                    delta = None
                if faults.corrupt_wire and resets:
                    # ShardWire payloads, not (handle, wire) pairs: replace
                    # the first re-shipped shard with the invalid marker.
                    resets = (CORRUPT_WIRE,) + resets[1:]
            jobs.append(
                WorkerJob(
                    worker=index,
                    payload=(delta, resets, extends, names, frontier, wire_probes, directive),
                    # Recovery reseeds the worker with its shard's current
                    # wires and the full interner snapshot, so the retry
                    # carries only the probes.
                    retry_payload=(None, (), (), names, frontier, wire_probes, None),
                    units=max(1, len(frontier)),
                )
            )
        attribute_of = {(name, position): attribute for name, attribute, position, _ in equal_probes}
        membership: dict[str, dict[ValueId, frozenset[int]]] = {name: {} for name in names}
        equality: dict[tuple[str, str, ValueId], tuple[int, ...]] = {}
        for membership_part, equality_part in self.supervisor.run(
            jobs, self._submit, self._recover_worker
        ):
            for name, hits in membership_part:
                table = membership[name]
                for key, rows in hits:
                    have = table.get(key)
                    table[key] = rows if have is None else have | rows
            for (name, position), hits in equality_part:
                attribute = attribute_of[(name, position)]
                for key, rows in hits:
                    have_rows = equality.get((name, attribute, key))
                    equality[(name, attribute, key)] = (
                        rows if have_rows is None else tuple(sorted(have_rows + rows))
                    )
        return membership, equality

    # ------------------------------------------------------------------ #
    def _submit(self, worker: int, payload: tuple) -> Future:
        return self._workers[worker].submit(_run_depth, payload)

    def _recover_worker(self, worker: int) -> None:
        """Respawn shard worker *worker* seeded with its current shard state.

        The replacement executor's initializer carries the shard's current
        wire forms and the full interner flag snapshot — a complete re-seed,
        which is also why a *desynchronised* worker (lost delta, corrupt
        wire) is recoverable here: the respawn rebuilds the exact state an
        uninterrupted delta stream would have produced.  The parent-side
        delta bookkeeping is re-anchored to what the fresh seed contains.
        """
        terminate_executor(self._workers[worker])
        snapshot = self.sharded.interner_snapshot(0)
        self._workers[worker] = self._new_worker(worker, snapshot)
        self._watermarks[worker] = snapshot[1]
        relations = self.sharded.shard_relations()
        self._generations[worker] = {name: rel.generation for name, rel in relations.items()}
        self._shipped_rows[worker] = {
            name: len(rel.shards[worker]) for name, rel in relations.items()
        }

    def warm(self) -> None:
        """Spawn and seed every shard worker now (benchmarks time depths, not forking)."""
        empty: tuple = (None, (), (), (), (), (), None)
        timeout = self.supervisor.deadline_policy.timeout_for(0)
        for future in [worker.submit(_run_depth, empty) for worker in self._workers]:
            future.result(timeout=timeout)

    def close(self) -> None:
        """Shut the shard workers down; the fan-out is unusable afterwards.

        Idempotent and hard-terminating, like :meth:`ProcessFanout.close` —
        the chase's fallback detach closes the whole pool, healthy shard
        workers included, instead of leaking them to interpreter exit.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            terminate_executor(worker)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"SaturationFanout({self.shard_count} shards, {state})"


class SerialShardScatter:
    """In-process scatter over the same shards — the identity/debug backend.

    Probes the parent-side :class:`~repro.db.sharding.ShardedInstance`
    directly (no processes, no pickling) through exactly the merge path the
    process fan-out gathers with.  This is what ``shard_count > 1`` means
    under the serial/thread backends, and what the property suite uses to
    pin scatter/gather ≡ unsharded without paying worker startup per case.
    """

    def __init__(self, sharded: ShardedInstance) -> None:
        self.sharded = sharded
        self.shard_count = sharded.shard_count
        self._closed = False

    def depth_tables(
        self,
        names: tuple[str, ...],
        frontier: tuple[ValueId, ...],
        equal_probes: tuple[tuple[str, str, int, tuple[ValueId, ...]], ...],
    ) -> DepthTables:
        if self._closed:
            raise RuntimeError("SerialShardScatter is closed")
        self.sharded.sync()
        membership = {name: self.sharded.membership_table(name, frontier) for name in names}
        equality: dict[tuple[str, str, ValueId], tuple[int, ...]] = {}
        for name, attribute, position, keys in equal_probes:
            for key, rows in self.sharded.equality_table(name, position, keys).items():
                equality[(name, attribute, key)] = rows
        return membership, equality

    def warm(self) -> None:
        """Nothing to spawn; present for interface parity."""

    def close(self) -> None:
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"SerialShardScatter({self.shard_count} shards, {state})"
