"""Relevant-tuple saturation (Algorithm 2, lines 1-12), batched across examples.

The frontier chase gathers the tuples of the database that are *relevant* to a
training example — reachable from the example's constants through exact value
matches or through approximate matches licensed by the matching dependencies.
PR 1 batched coverage testing; this module batches the other half of learning
cost, the saturation chase itself:

* :class:`FrontierChase.relevant_many` drives the chase for **many examples in
  one pass** over the database.  At every chase depth the union of all
  examples' frontier values is resolved through the multi-value index probes
  of the db layer (:meth:`repro.db.relation.RelationInstance.rows_with_values`
  / ``select_equal_many``), so each relation's indexes are walked once per
  depth instead of once per example, and examples whose chases overlap — the
  common case, since positive examples of one target reach the same entity
  neighbourhood — share every probe result.

* :class:`DatabaseProbeCache` memoises the pure index probes (value rows,
  equality selections, global value frequencies) for the lifetime of a
  learning session, so prediction, cross-validation folds and scenario-grid
  cells over the same database instance never repeat a probe.

* :class:`SaturationCache` holds the finished :class:`RelevantTuples` per
  example, shared by bottom-clause and ground-bottom-clause assembly — which
  is what makes a bottom clause cover its own example (Proposition 4.3) under
  the subsumption-based coverage test.

Per-example results are bit-identical to the pre-batching per-example path
(kept as :meth:`FrontierChase.relevant_serial` for tests and benchmarks): the
chase state of every example is advanced by exactly the same code, only the
probes are answered from the shared prefetched caches.  In particular the
per-example sampling RNG is still seeded from the example's values alone, so
batch composition cannot change what any example gathers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..db.instance import DatabaseInstance
from ..db.relation import RelationInstance
from ..db.sampling import Sampler
from ..db.tuples import Tuple
from ..similarity.index import SimilarityIndex
from .config import DLearnConfig
from .problem import Example, LearningProblem

__all__ = [
    "DatabaseProbeCache",
    "FrontierChase",
    "RelevantTuples",
    "SaturationCache",
    "SimilarityEvidence",
]


@dataclass(frozen=True, slots=True)
class SimilarityEvidence:
    """One approximate match discovered while gathering relevant tuples.

    ``known_value`` was already in the seen-constant set ``M``;
    ``matched_value`` is the similar value found in ``relation.attribute`` of
    the matched tuple, licensed by MD ``md_name``.
    """

    md_name: str
    known_value: object
    matched_value: object


@dataclass
class RelevantTuples:
    """The information relevant to one example (``I_e`` in Algorithm 2)."""

    tuples: list[Tuple] = field(default_factory=list)
    similarity_evidence: list[SimilarityEvidence] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tuples)


class SaturationCache:
    """Finished chase results keyed by example values.

    Keyed on the example's *values* only: the relevant tuples are reachable
    from those values regardless of the example's label, so an example that
    appears with both labels shares one entry, and the bottom clause and the
    ground bottom clause of one example are assembled from exactly the same
    gathered tuples.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[object, ...], RelevantTuples] = {}

    def get(self, values: tuple[object, ...]) -> RelevantTuples | None:
        return self._entries.get(values)

    def store(self, values: tuple[object, ...], relevant: RelevantTuples) -> None:
        self._entries[values] = relevant

    def __contains__(self, values: tuple[object, ...]) -> bool:
        return values in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class DatabaseProbeCache:
    """Memoised pure index probes over one database instance.

    Every answer is a pure function of the (immutable, insert-only) database,
    so one cache can back every chase over the instance — the covering loop,
    prediction, all cross-validation folds.  ``prefetch_*`` fill many entries
    through the db layer's multi-value probes in one index walk.
    """

    def __init__(self, database: DatabaseInstance) -> None:
        self.database = database
        self._frequency: dict[object, int] = {}
        #: (relation name, value) → rows; entries are treated as immutable.
        self._any_rows: dict[tuple[str, object], frozenset[int] | set[int]] = {}
        self._equal: dict[tuple[str, str, object], tuple[Tuple, ...]] = {}

    # -- global value frequency (drives the chaseability test) ---------- #
    def value_frequency(self, value: object) -> int:
        """Number of tuples (across all relations) containing *value*.

        Computed through :meth:`rows_any`, so one walk serves both the
        chaseability test and the frontier probes of the following depth —
        by the time a value passes the frequency check, its per-relation row
        sets are already cached.
        """
        cached = self._frequency.get(value)
        if cached is None:
            cached = sum(
                len(self.rows_any(relation, value))
                for relation in self.database
                if relation.contains_value(value)
            )
            self._frequency[value] = cached
        return cached

    # -- any-attribute containment probes ------------------------------- #
    def rows_any(self, relation: RelationInstance, value: object) -> frozenset[int] | set[int]:
        key = (relation.schema.name, value)
        cached = self._any_rows.get(key)
        if cached is None:
            cached = relation.rows_with_value(value)
            self._any_rows[key] = cached
        return cached

    def prefetch_any(self, relation: RelationInstance, values: Iterable[object]) -> None:
        name = relation.schema.name
        missing = [value for value in values if (name, value) not in self._any_rows]
        if not missing:
            return
        for value, rows in relation.rows_with_values(missing).items():
            self._any_rows[(name, value)] = rows

    def any_rows_table(self, relation: RelationInstance, values: Iterable[object]) -> dict[object, frozenset[int] | set[int]]:
        """Prefetch *values* against *relation* and return the non-empty hits.

        The returned plain dict is the depth-local probe table the batched
        chase hands to every example: distributing rows per example becomes a
        direct dictionary lookup instead of a per-(value, relation) cache
        probe.
        """
        self.prefetch_any(relation, values)
        name = relation.schema.name
        any_rows = self._any_rows
        table: dict[object, frozenset[int] | set[int]] = {}
        for value in values:
            rows = any_rows[(name, value)]
            if rows:
                table[value] = rows
        return table

    # -- equality selection probes --------------------------------------- #
    def tuples_equal(self, relation: RelationInstance, attribute: str, value: object) -> tuple[Tuple, ...]:
        key = (relation.schema.name, attribute, value)
        cached = self._equal.get(key)
        if cached is None:
            cached = tuple(relation.select_equal(attribute, value))
            self._equal[key] = cached
        return cached

    def prefetch_equal(self, relation: RelationInstance, attribute: str, values: Iterable[object]) -> None:
        name = relation.schema.name
        missing = [value for value in values if (name, attribute, value) not in self._equal]
        if not missing:
            return
        for value, tuples in relation.select_equal_many(attribute, missing).items():
            self._equal[(name, attribute, value)] = tuple(tuples)


class _DirectProbes:
    """Uncached probe answers — the reference per-example path.

    Interface-compatible with :class:`DatabaseProbeCache`; every call goes
    straight to the database indexes, exactly as the pre-batching builder did.
    """

    def __init__(self, database: DatabaseInstance) -> None:
        self.database = database

    def value_frequency(self, value: object) -> int:
        return self.database.value_frequency(value)

    def rows_any(self, relation: RelationInstance, value: object) -> set[int]:
        return relation.rows_with_value(value)

    def tuples_equal(self, relation: RelationInstance, attribute: str, value: object) -> tuple[Tuple, ...]:
        return tuple(relation.select_equal(attribute, value))


class _ChaseState:
    """Mutable per-example chase state (``M``, ``I_e``, the frontier)."""

    __slots__ = ("example", "sampler", "known_constants", "constants_at", "seen_tuples", "result", "frontier")

    def __init__(self, example: Example, sampler: Sampler) -> None:
        self.example = example
        self.sampler = sampler
        self.known_constants: set[object] = set()
        self.constants_at: dict[tuple[str, str], set[object]] = {}
        self.seen_tuples: set[Tuple] = set()
        self.result = RelevantTuples()
        self.frontier: set[object] = set()

    def remember(self, relation_name: str, attribute_name: str, value: object) -> None:
        if value is None:
            return
        self.known_constants.add(value)
        self.constants_at.setdefault((relation_name, attribute_name), set()).add(value)


class FrontierChase:
    """Gathers relevant tuples for one or many examples (Algorithm 2, lines 1-12).

    Parameters
    ----------
    problem:
        The learning problem (database, target, constraints, examples).
    config:
        Learner configuration; the chase uses ``iterations`` (``d``),
        ``sample_size``, ``max_chase_frequency``, ``use_mds`` /
        ``exact_match_only`` and ``restrict_sources``.
    similarity_indexes:
        Precomputed top-``k_m`` similarity indexes keyed by MD name.
    probes:
        Shared :class:`DatabaseProbeCache`; created privately when not given.
        Sessions pass one cache so every chase over the same database reuses
        probe results.
    cache:
        Shared :class:`SaturationCache` of finished results.
    batched:
        With ``False`` the chase answers every request through the uncached
        per-example reference path — the pre-batching behaviour, kept for the
        saturation benchmark and equivalence tests.
    """

    def __init__(
        self,
        problem: LearningProblem,
        config: DLearnConfig,
        similarity_indexes: dict[str, SimilarityIndex] | None = None,
        *,
        probes: DatabaseProbeCache | None = None,
        cache: SaturationCache | None = None,
        batched: bool = True,
    ) -> None:
        self.problem = problem
        self.config = config
        self.similarity_indexes = similarity_indexes or {}
        self.probes = probes or DatabaseProbeCache(problem.database)
        self.cache = cache or SaturationCache()
        self.batched = batched
        self._partner_cache: dict[tuple[str, object], tuple[object, ...]] = {}
        #: value → chaseability verdict; valid per chase (fixed config limit).
        self._chaseable_memo: dict[object, bool] = {}

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def relevant(self, example: Example) -> RelevantTuples:
        """The (cached) relevant tuples of one example."""
        cached = self.cache.get(example.values)
        if cached is not None:
            return cached
        return self.relevant_many([example])[0]

    def relevant_many(self, examples: Sequence[Example]) -> list[RelevantTuples]:
        """Relevant tuples for many examples through one batched chase.

        Uncached examples are chased together: every depth prefetches the
        union of the active frontiers through the db layer's multi-value
        probes, then advances each example's state against the filled cache.
        Already-cached examples are simply looked up.
        """
        pending: dict[tuple[object, ...], Example] = {}
        for example in examples:
            if example.values not in self.cache and example.values not in pending:
                pending[example.values] = example
        if pending:
            if self.batched:
                self._chase_batch(list(pending.values()))
            else:
                for example in pending.values():
                    self.cache.store(example.values, self.relevant_serial(example))
        results = []
        for example in examples:
            cached = self.cache.get(example.values)
            assert cached is not None
            results.append(cached)
        return results

    def relevant_serial(self, example: Example) -> RelevantTuples:
        """Reference per-example chase without any shared caching.

        Probes go straight to the database indexes and nothing is memoised —
        the exact cost profile of the pre-batching builder, kept as the
        baseline that ``benchmarks/bench_saturation_batch.py`` measures
        against and that equivalence tests compare with.
        """
        probes = _DirectProbes(self.problem.database)
        state = self._new_state(example, probes, memo=None)
        for _ in range(self.config.iterations):
            if not state.frontier:
                break
            self._advance(state, probes, tables=None, memo=None)
        return state.result

    def chaseable(self, value: object) -> bool:
        """Should *value* drive lookups and joins?  (See :meth:`_chaseable`.)"""
        return self._chaseable(value, self.probes, self._chaseable_memo)

    # ------------------------------------------------------------------ #
    # the batched chase
    # ------------------------------------------------------------------ #
    def _chase_batch(self, examples: list[Example]) -> None:
        probes = self.probes
        memo = self._chaseable_memo
        states = [self._new_state(example, probes, memo) for example in examples]
        for _ in range(self.config.iterations):
            active = [state for state in states if state.frontier]
            if not active:
                break
            tables = self._prefetch_depth(active)
            for state in active:
                self._advance(state, probes, tables, memo)
        for state in states:
            self.cache.store(state.example.values, state.result)

    def _prefetch_depth(self, states: Sequence[_ChaseState]) -> dict[str, dict[object, frozenset[int] | set[int]]]:
        """Resolve the probes this depth is known to need, one index walk each.

        Exact-match probes: the union of the active frontiers, against every
        allowed relation — returned as one value→rows table per relation, so
        distributing rows to examples is a plain dictionary lookup.  MD
        probes: the union of every example's ``search_values`` *as of depth
        start*.  Constants recorded midway through the depth (a tuple sampled
        by an earlier relation putting a frontier value into a premise
        position) can add search values the prefetch did not see — those fall
        back to the same shared caches, which compute on miss, so prefetching
        a depth-start subset is purely an optimisation and never a
        correctness concern.
        """
        union_frontier: set[object] = set()
        for state in states:
            union_frontier |= state.frontier
        database = self.problem.database
        probe_mds = self.config.use_mds and not self.config.exact_match_only
        tables: dict[str, dict[object, frozenset[int] | set[int]]] = {}
        for relation in database:
            if not self._relation_allowed(relation.schema):
                continue
            tables[relation.schema.name] = self.probes.any_rows_table(relation, union_frontier)
            if not probe_mds:
                continue
            relation_name = relation.schema.name
            for md in self.problem.mds:
                if not md.involves(relation_name):
                    continue
                index = self.similarity_indexes.get(md.name)
                if index is None:
                    continue
                other_relation = md.other_relation(relation_name)
                to_attribute, from_attribute = md.oriented_premises(relation_name)[0]
                search_values: set[object] = set()
                for state in states:
                    known = state.constants_at.get((other_relation, from_attribute))
                    if known:
                        search_values |= known & state.frontier
                partners_needed: set[object] = set()
                for value in search_values:
                    for partner in self._partners(index, md.name, value):
                        if partner != value:
                            partners_needed.add(partner)
                if partners_needed:
                    self.probes.prefetch_equal(relation, to_attribute, partners_needed)
        return tables

    # ------------------------------------------------------------------ #
    # per-example chase mechanics (shared by every path)
    # ------------------------------------------------------------------ #
    def _new_state(self, example: Example, probes, memo: dict[object, bool] | None) -> _ChaseState:
        state = _ChaseState(example, self._example_sampler(example))
        target = self.problem.target
        for attribute, value in zip(target.attributes, example.values):
            state.remember(target.name, attribute.name, value)
        state.frontier = {value for value in state.known_constants if self._chaseable(value, probes, memo)}
        return state

    def _example_sampler(self, example: Example) -> Sampler:
        fingerprint = zlib.crc32(repr(example.values).encode("utf-8"))
        return Sampler((self.config.seed * 1_000_003 + fingerprint) & 0x7FFFFFFF)

    def _advance(self, state: _ChaseState, probes, tables, memo) -> None:
        """One depth of Algorithm 2 for one example, identical on every path.

        *tables* is the depth's prefetched per-relation probe table (batched
        path) or ``None`` (reference path); *memo* the shared chaseability
        memo or ``None``.  Neither changes what is gathered — only where the
        answers come from.
        """
        next_frontier: set[object] = set()
        for relation in self.problem.database:
            if not self._relation_allowed(relation.schema):
                continue
            table = tables.get(relation.schema.name) if tables is not None else None
            gathered = self._relevant_in_relation(relation, state, probes, table)
            # De-duplicate tuples reachable along several paths, preferring
            # the entry that carries similarity evidence (the MD join is
            # what the clause must be able to express).
            deduplicated: dict[Tuple, SimilarityEvidence | None] = {}
            for tup, evidence in gathered:
                if tup in state.seen_tuples:
                    continue
                if evidence is not None or tup not in deduplicated:
                    deduplicated[tup] = evidence
            fresh = list(deduplicated.items())
            sampled = state.sampler.sample(fresh, self.config.sample_size)
            for tup, evidence in sampled:
                if tup in state.seen_tuples:
                    continue
                state.seen_tuples.add(tup)
                state.result.tuples.append(tup)
                if evidence is not None:
                    state.result.similarity_evidence.append(evidence)
                for attribute, value in zip(relation.schema.attributes, tup.values):
                    if (
                        value is not None
                        and value not in state.known_constants
                        and self._chaseable(value, probes, memo)
                    ):
                        next_frontier.add(value)
                    state.remember(relation.schema.name, attribute.name, value)
        state.frontier = next_frontier

    def _relevant_in_relation(
        self, relation: RelationInstance, state: _ChaseState, probes, table
    ) -> list[tuple[Tuple, SimilarityEvidence | None]]:
        """Tuples of one relation reachable from the example's frontier constants.

        Each gathered tuple is paired with the similarity evidence that
        produced it (``None`` for exact matches), so that only tuples
        surviving the per-relation sampling contribute similarity and repair
        literals to the clause.
        """
        rows: set[int] = set()
        if table is not None:
            for value in state.frontier:
                value_rows = table.get(value)
                if value_rows:
                    rows |= value_rows
        else:
            for value in state.frontier:
                rows |= probes.rows_any(relation, value)
        gathered: list[tuple[Tuple, SimilarityEvidence | None]] = [
            (relation.tuple_at(row), None) for row in sorted(rows)
        ]

        if not self.config.use_mds:
            return gathered

        relation_name = relation.schema.name
        for md in self.problem.mds:
            if not md.involves(relation_name):
                continue
            other_relation = md.other_relation(relation_name)
            # Constants known to sit in the MD's premise attribute on the
            # *other* side drive the similarity search over this relation.
            to_attribute, from_attribute = md.oriented_premises(relation_name)[0]
            search_values = state.constants_at.get((other_relation, from_attribute), set()) & state.frontier
            if not search_values:
                continue
            index = self.similarity_indexes.get(md.name)
            for known_value in search_values:
                for partner in self._similarity_partners(index, md.name, known_value, probes):
                    if partner == known_value:
                        # Exact matches already surfaced through the value index.
                        continue
                    evidence = SimilarityEvidence(md.name, known_value, partner)
                    for tup in probes.tuples_equal(relation, to_attribute, partner):
                        gathered.append((tup, evidence))
        return gathered

    def _similarity_partners(
        self, index: SimilarityIndex | None, md_name: str, value: object, probes
    ) -> tuple[object, ...]:
        if self.config.exact_match_only or index is None:
            # Castor-Exact: MD attributes may be joined, but only on equality;
            # the exact matches are already found through the value index.
            return ()
        if isinstance(probes, _DirectProbes):
            # The uncached reference path must not warm (or profit from) the
            # shared partner cache.
            return tuple(index.partners_of(value))
        return self._partners(index, md_name, value)

    def _partners(self, index: SimilarityIndex, md_name: str, value: object) -> tuple[object, ...]:
        """Cached top-``k_m`` partners (the merge in ``matches_of`` is not free)."""
        key = (md_name, value)
        cached = self._partner_cache.get(key)
        if cached is None:
            cached = tuple(index.partners_of(value))
            self._partner_cache[key] = cached
        return cached

    _MISSING = object()

    def _chaseable(self, value: object, probes, memo: dict[object, bool] | None) -> bool:
        """Should *value* drive lookups and joins?

        Identifiers and textual values drive the chase.  Purely numeric
        values (years, prices, weights) and values that occur very frequently
        across the whole database (genre names, countries) connect
        essentially everything to everything; chasing them would drag
        unrelated tuples into the clause, so they are neither used for
        lookups nor allowed to join tuples that were reached independently
        (see ``DLearnConfig.max_chase_frequency``).  This plays the role of
        the mode declarations of classic ILP systems.
        """
        if memo is not None:
            cached = memo.get(value, self._MISSING)
            if cached is not self._MISSING:
                return cached
        if not isinstance(value, str):
            verdict = False
        else:
            limit = self.config.max_chase_frequency
            verdict = True if limit is None else probes.value_frequency(value) <= limit
        if memo is not None:
            memo[value] = verdict
        return verdict

    def _relation_allowed(self, relation_schema) -> bool:
        """Source restriction used by the Castor-NoMD baseline (see DLearnConfig)."""
        allowed = self.config.restrict_sources
        if allowed is None or relation_schema.source is None:
            return True
        return relation_schema.source in allowed
