"""Relevant-tuple saturation (Algorithm 2, lines 1-12), batched across examples.

The frontier chase gathers the tuples of the database that are *relevant* to a
training example — reachable from the example's constants through exact value
matches or through approximate matches licensed by the matching dependencies.
PR 1 batched coverage testing, PR 3 batched the chase across examples; with
the interned-columnar storage core the chase now runs on **value ids**
end-to-end:

* frontiers, seen-constant sets and per-attribute constant maps hold dense
  integer ids instead of strings, so every membership test and set union the
  chase performs hashes machine integers;
* index probes (:meth:`repro.db.relation.RelationInstance.rows_with_ids` /
  ``rows_equal_id``) are answered id-keyed straight from the relation
  indexes, whose entries freeze to shared immutable sets on first probe;
* gathered tuples are tracked as id rows; a :class:`~repro.db.tuples.Tuple`
  view is materialised only for the rows that survive per-relation sampling,
  and its values decode lazily at the clause-assembly boundary;
* values are decoded only where the clause layer needs them: similarity
  partner lookups (the similarity index is value-keyed), chaseability type
  checks (memoised per id) and :class:`SimilarityEvidence` records.

* :class:`FrontierChase.relevant_many` drives the chase for **many examples in
  one pass** over the database: at every chase depth the union of all
  examples' frontier ids is resolved through the multi-value index probes,
  so each relation's indexes are walked once per depth instead of once per
  example, and examples whose chases overlap share every probe result.

* :class:`DatabaseProbeCache` memoises the chase-global derived quantities
  (value frequencies) and hands out depth-local probe tables; the underlying
  id-keyed row sets are cached inside the relation indexes themselves, so
  prediction, cross-validation folds and scenario-grid cells over the same
  database instance never repeat a probe.

* :class:`SaturationCache` holds the finished :class:`RelevantTuples` per
  example (keyed by the example's interned id tuple), shared by bottom-clause
  and ground-bottom-clause assembly — which is what makes a bottom clause
  cover its own example (Proposition 4.3) under the subsumption-based
  coverage test.

Per-example results are identical on every path (batched, per-example
reference :meth:`FrontierChase.relevant_serial`, interned or identity
storage): each example's chase state is advanced by exactly the same code,
probe answers are storage-mode independent, and the one order-sensitive
iteration — the per-depth similarity search over several known constants —
visits constants in decoded-value order, which is storage-mode independent
too.  The per-example sampling RNG is still seeded from the example's values
alone, so batch composition cannot change what any example gathers.
"""

from __future__ import annotations

import pickle
import warnings
import zlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..db import kernels as db_kernels
from ..db.instance import DatabaseInstance
from ..db.interning import MISSING_ID
from ..db.overlay import OverlayInstance
from ..db.relation import RelationInstance
from ..db.sampling import Sampler
from ..db.tuples import Tuple
from ..similarity.index import SimilarityIndex
from .config import DLearnConfig
from .problem import Example, LearningProblem
from .supervision import FanoutFault, FanoutFaultError, FaultCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fanout import SaturationFanout, SerialShardScatter

__all__ = [
    "DatabaseProbeCache",
    "FrontierChase",
    "RelevantTuples",
    "SaturationCache",
    "SimilarityEvidence",
]


@dataclass(frozen=True, slots=True)
class SimilarityEvidence:
    """One approximate match discovered while gathering relevant tuples.

    ``known_value`` was already in the seen-constant set ``M``;
    ``matched_value`` is the similar value found in ``relation.attribute`` of
    the matched tuple, licensed by MD ``md_name``.  Values are decoded — this
    record crosses into the clause layer, which is a rendering boundary.
    """

    md_name: str
    known_value: object
    matched_value: object


@dataclass(slots=True)
class RelevantTuples:
    """The information relevant to one example (``I_e`` in Algorithm 2)."""

    tuples: list[Tuple] = field(default_factory=list)
    similarity_evidence: list[SimilarityEvidence] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tuples)


class SaturationCache:
    """Finished chase results keyed by the example's interned value ids.

    Keyed on the example's *values* only (as an id tuple): the relevant
    tuples are reachable from those values regardless of the example's label,
    so an example that appears with both labels shares one entry, and the
    bottom clause and the ground bottom clause of one example are assembled
    from exactly the same gathered tuples.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, RelevantTuples] = {}

    def get(self, key: tuple) -> RelevantTuples | None:
        return self._entries.get(key)

    def store(self, key: tuple, relevant: RelevantTuples) -> None:
        self._entries[key] = relevant

    def clear(self) -> None:
        """Drop every finished result (the backing database was mutated)."""
        self._entries.clear()

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class DatabaseProbeCache:
    """Memoised chase-global probe state over one database instance.

    Every answer is a pure function of the (immutable, insert-only) database,
    so one cache can back every chase over the instance — the covering loop,
    prediction, all cross-validation folds.  Since the interned storage core
    the raw id→rows sets are cached (frozen) inside the relation indexes
    themselves; what remains here are the cross-relation aggregates (value
    frequencies) and the depth-local probe tables the batched chase hands to
    every example.
    """

    def __init__(self, database: DatabaseInstance) -> None:
        self.database = database
        #: value id → number of tuples containing it anywhere (chaseability).
        self._frequency: dict[object, int] = {}
        # The interned core freezes probe results inside the relation indexes
        # themselves, so no second cache layer is kept on top.  Two storages
        # do not have that index-level caching and are memoised here instead:
        # the seed string path (PairValueIndex rebuilds a row set per probe —
        # this memo is exactly the seed's probe cache) and copy-on-write
        # overlays (every probe patches the base result with an O(delta)
        # scan, and the baselines chase over overlays directly).
        self._memoise = not database.interned or isinstance(database, OverlayInstance)
        self._any_rows: dict[tuple[str, object], frozenset[int]] = {}
        self._equal: dict[tuple[str, str, object], tuple[int, ...]] = {}

    def clear(self) -> None:
        """Drop every memoised answer (the backing database was mutated in place).

        The cache's purity argument assumes an unchanging instance; callers
        that detect an in-place mutation (via
        :meth:`repro.db.instance.DatabaseInstance.mutation_stamp`) clear the
        memos so the next probe recomputes against the current contents.
        """
        self._frequency.clear()
        self._any_rows.clear()
        self._equal.clear()

    # -- global value frequency (drives the chaseability test) ---------- #
    def value_frequency(self, key: object) -> int:
        """Number of tuples (across all relations) containing value id *key*."""
        cached = self._frequency.get(key)
        if cached is None:
            cached = sum(
                len(self.rows_any(relation, key))
                for relation in self.database
                if relation.contains_id(key)
            )
            self._frequency[key] = cached
        return cached

    # -- any-attribute containment probes ------------------------------- #
    def rows_any(self, relation: RelationInstance, key: object) -> frozenset[int]:
        if not self._memoise:
            return relation.rows_with_id(key)
        memo_key = (relation.schema.name, key)
        cached = self._any_rows.get(memo_key)
        if cached is None:
            cached = relation.rows_with_id(key)
            self._any_rows[memo_key] = cached
        return cached

    def any_rows_table(self, relation: RelationInstance, keys: Iterable[object]) -> dict[object, frozenset[int]]:
        """Resolve *keys* against *relation* in one call and return the non-empty hits.

        The returned plain dict is the depth-local probe table the batched
        chase hands to every example: distributing rows per example becomes a
        direct dictionary lookup, and the underlying frozensets are the
        index's own shared entries (memoised probe results on the seed
        string path).
        """
        if not self._memoise:
            return {key: rows for key, rows in relation.rows_with_ids(keys).items() if rows}
        return {key: rows for key in keys if (rows := self.rows_any(relation, key))}

    # -- equality selection probes --------------------------------------- #
    def rows_equal(self, relation: RelationInstance, attribute: str, key: object) -> tuple[int, ...]:
        if not self._memoise:
            return relation.rows_equal_id(attribute, key)
        memo_key = (relation.schema.name, attribute, key)
        cached = self._equal.get(memo_key)
        if cached is None:
            cached = relation.rows_equal_id(attribute, key)
            self._equal[memo_key] = cached
        return cached

    def prefetch_equal(self, relation: RelationInstance, attribute: str, keys: Iterable[object]) -> None:
        """Warm the attribute-index entries (and the seed-path memo) for *keys*."""
        if not self._memoise:
            relation.rows_equal_ids(attribute, keys)
            return
        for key in keys:
            self.rows_equal(relation, attribute, key)


class _DirectProbes:
    """Uncached probe answers — the reference per-example path.

    Interface-compatible with :class:`DatabaseProbeCache`; every call goes
    straight to the database indexes (no frequency memo, no depth tables),
    matching the cost profile of the pre-batching builder.
    """

    def __init__(self, database: DatabaseInstance) -> None:
        self.database = database

    def value_frequency(self, key: object) -> int:
        return self.database.id_frequency(key)

    def rows_any(self, relation: RelationInstance, key: object) -> frozenset[int]:
        return relation.rows_with_id(key)

    def rows_equal(self, relation: RelationInstance, attribute: str, key: object) -> tuple[int, ...]:
        return relation.rows_equal_id(attribute, key)


class _ChaseState:
    """Mutable per-example chase state (``M``, ``I_e``, the frontier) — id-keyed."""

    __slots__ = ("example", "sampler", "known_constants", "constants_at", "seen_rows", "result", "frontier")

    def __init__(self, example: Example, sampler: Sampler) -> None:
        self.example = example
        self.sampler = sampler
        #: value ids of every constant seen so far (``M``).
        self.known_constants: set = set()
        #: (relation, attribute) → value ids known to occur there.
        self.constants_at: dict[tuple[str, str], set] = {}
        #: (relation name, canonical row) of every gathered tuple —
        #: value-level deduplication (duplicate rows share a canonical row),
        #: exactly like the former Tuple-keyed seen set but on integers.
        self.seen_rows: set[tuple[str, int]] = set()
        self.result = RelevantTuples()
        #: value ids driving the next depth's lookups.
        self.frontier: set = set()

    def remember(self, relation_name: str, attribute_name: str, key: object) -> None:
        self.known_constants.add(key)
        self.constants_at.setdefault((relation_name, attribute_name), set()).add(key)


class _DepthTables:
    """One depth's prefetched probe tables, whatever plane resolved them.

    ``any_rows`` maps relation name → (frontier id → matching rows) — the
    shape :meth:`DatabaseProbeCache.any_rows_table` returns, one table per
    allowed relation, non-empty keys only.  ``equal_rows`` carries the
    scatter/gather plane's gathered MD equality answers keyed
    ``(relation name, attribute, partner id)``; it is ``None`` on the
    unsharded path, where the same probes are warmed into the index/probe
    caches instead and answered by ``probes.rows_equal`` at use.  Either
    way a missing key falls back to the probe layer, so the prefetched
    subset is an optimisation, never a correctness dependency.
    """

    __slots__ = ("any_rows", "equal_rows")

    def __init__(
        self,
        any_rows: dict[str, dict[object, frozenset[int]]],
        equal_rows: dict[tuple[str, str, object], tuple[int, ...]] | None,
    ) -> None:
        self.any_rows = any_rows
        self.equal_rows = equal_rows


class FrontierChase:
    """Gathers relevant tuples for one or many examples (Algorithm 2, lines 1-12).

    Parameters
    ----------
    problem:
        The learning problem (database, target, constraints, examples).
    config:
        Learner configuration; the chase uses ``iterations`` (``d``),
        ``sample_size``, ``max_chase_frequency``, ``use_mds`` /
        ``exact_match_only`` and ``restrict_sources``.
    similarity_indexes:
        Precomputed top-``k_m`` similarity indexes keyed by MD name.
    probes:
        Shared :class:`DatabaseProbeCache`; created privately when not given.
        Sessions pass one cache so every chase over the same database reuses
        probe results.
    cache:
        Shared :class:`SaturationCache` of finished results.
    batched:
        With ``False`` the chase answers every request through the uncached
        per-example reference path — the pre-batching behaviour, kept for the
        saturation benchmark and equivalence tests.
    """

    def __init__(
        self,
        problem: LearningProblem,
        config: DLearnConfig,
        similarity_indexes: dict[str, SimilarityIndex] | None = None,
        *,
        probes: DatabaseProbeCache | None = None,
        cache: SaturationCache | None = None,
        batched: bool = True,
    ) -> None:
        self.problem = problem
        self.config = config
        self.similarity_indexes = similarity_indexes or {}
        self.probes = probes or DatabaseProbeCache(problem.database)
        self.cache = cache or SaturationCache()
        self.batched = batched
        self._interner = problem.database.interner
        #: Route the depth prefetch through the numpy column kernels.  Gated
        #: to exactly the storage the kernels cover — interned, non-overlay
        #: instances, whose array('q') columns admit zero-copy views (this is
        #: also precisely the storage the probe cache does *not* memoise, so
        #: no memo layer is bypassed).  Results are value-identical either
        #: way; only the cost profile differs.
        self._vectorized = (
            batched
            and config.vectorized_kernels
            and db_kernels.HAS_NUMPY
            and problem.database.interned
            and not isinstance(problem.database, OverlayInstance)
        )
        #: (md name, value id) → decoded top-k partner values.
        self._partner_cache: dict[tuple[str, object], tuple[object, ...]] = {}
        #: value id → chaseability verdict; valid per chase (fixed config limit).
        self._chaseable_memo: dict[object, bool] = {}
        #: value id → canonical sort key for order-sensitive iterations.
        self._sort_keys: dict[object, str] = {}
        #: Attached shard scatter plane (:meth:`attach_shard_scatter`);
        #: ``None`` keeps every depth on the unsharded prefetch.
        self._shard_scatter: "SaturationFanout | SerialShardScatter | None" = None
        #: Fault/retry/recovery counters of the last *supervised* scatter
        #: plane attached here.  Kept past detachment (the plane is closed
        #: then), so session observability survives the pool it describes.
        self._scatter_counters: FaultCounters | None = None

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def _cache_key(self, example: Example) -> tuple:
        return self.problem.database.intern_values(example.values)

    def relevant(self, example: Example) -> RelevantTuples:
        """The (cached) relevant tuples of one example."""
        cached = self.cache.get(self._cache_key(example))
        if cached is not None:
            return cached
        return self.relevant_many([example])[0]

    def relevant_many(self, examples: Sequence[Example]) -> list[RelevantTuples]:
        """Relevant tuples for many examples through one batched chase.

        Uncached examples are chased together: every depth prefetches the
        union of the active frontiers through the db layer's multi-value
        probes, then advances each example's state against the filled cache.
        Already-cached examples are simply looked up.
        """
        keys = [self._cache_key(example) for example in examples]
        pending: dict[tuple, Example] = {}
        for key, example in zip(keys, examples):
            if key not in self.cache and key not in pending:
                pending[key] = example
        if pending:
            if self.batched:
                self._chase_batch(list(pending.items()))
            else:
                for key, example in pending.items():
                    self.cache.store(key, self.relevant_serial(example))
        results = []
        for key in keys:
            cached = self.cache.get(key)
            assert cached is not None
            results.append(cached)
        return results

    def relevant_serial(self, example: Example) -> RelevantTuples:
        """Reference per-example chase without any shared caching.

        Probes go straight to the database indexes and nothing is memoised —
        the cost profile of the pre-batching builder, kept as the baseline
        that ``benchmarks/bench_saturation_batch.py`` measures against and
        that equivalence tests compare with.
        """
        probes = _DirectProbes(self.problem.database)
        state = self._new_state(example, probes, memo=None)
        for _ in range(self.config.iterations):
            if not state.frontier:
                break
            self._advance(state, probes, tables=None, memo=None)
        return state.result

    def chaseable(self, value: object) -> bool:
        """Should *value* drive lookups and joins?  (See :meth:`_chaseable`.)

        Value-level entry point used at the clause-assembly boundary; the
        chase itself runs the id-level test.
        """
        key = self.problem.database.id_of(value)
        if key == MISSING_ID and self._interner.interned:
            # Never stored anywhere: frequency 0, so only the type test applies.
            return isinstance(value, str)
        return self._chaseable(key, self.probes, self._chaseable_memo)

    def attach_shard_scatter(self, scatter: "SaturationFanout | SerialShardScatter | None") -> None:
        """Route each batched depth's probes through a shard scatter plane.

        *scatter* is a :class:`repro.core.fanout.SaturationFanout` (the
        process plane: shard workers answer the frontier probes GIL-free) or
        a :class:`repro.core.fanout.SerialShardScatter` (the in-process
        identity backend over the same shards).  Only the batched chase
        consults it — ``relevant_serial`` stays the unsharded reference
        oracle — and the gathered tables are, by the sharding layer's
        merge guarantees, equal to the unsharded prefetch's, so results do
        not depend on the attachment.  Pass ``None`` to detach.  A scatter
        whose worker pool breaks detaches itself with a ``RuntimeWarning``
        and the chase falls back to the unsharded path mid-batch.
        """
        if scatter is not None and not self.batched:
            raise ValueError(
                "the shard scatter serves the batched chase; a serial_saturation "
                "session has no per-depth barrier to scatter"
            )
        self._shard_scatter = scatter
        supervisor = getattr(scatter, "supervisor", None)
        if supervisor is not None:
            self._scatter_counters = supervisor.counters

    @property
    def fault_counters(self) -> FaultCounters | None:
        """Counters of the last supervised scatter plane (``None`` before one)."""
        return self._scatter_counters

    def invalidate(self) -> None:
        """Drop every database-derived memo after an in-place mutation.

        Relation-level caches (index entries, canonical-row maps) invalidate
        themselves on insert; what this clears are the layers stacked above
        the storage — finished chase results, the shared probe cache and the
        chaseability memo, all of which assumed an unchanging instance.
        Driven by the coverage engine's mutation-stamp check.
        """
        self.cache.clear()
        self.probes.clear()
        self._chaseable_memo.clear()

    # ------------------------------------------------------------------ #
    # the batched chase
    # ------------------------------------------------------------------ #
    def _chase_batch(self, pending: list[tuple[tuple, Example]]) -> None:
        probes = self.probes
        memo = self._chaseable_memo
        states = [(key, self._new_state(example, probes, memo)) for key, example in pending]
        for _ in range(self.config.iterations):
            active = [state for _, state in states if state.frontier]
            if not active:
                break
            tables = self._prefetch_depth(active)
            for state in active:
                self._advance(state, probes, tables, memo)
        for key, state in states:
            self.cache.store(key, state.result)

    def _prefetch_depth(self, states: Sequence[_ChaseState]) -> _DepthTables:
        """Resolve the probes this depth is known to need, one index walk each.

        Exact-match probes: the union of the active frontier ids, against
        every allowed relation — returned as one id→rows table per relation,
        so distributing rows to examples is a plain dictionary lookup.  MD
        probes: the union of every example's ``search_values`` *as of depth
        start*.  Constants recorded midway through the depth (a tuple sampled
        by an earlier relation putting a frontier value into a premise
        position) can add search values the prefetch did not see — those fall
        back to the same index-level caches, which compute on miss, so
        prefetching a depth-start subset is purely an optimisation and never
        a correctness concern.

        With a shard scatter attached (:meth:`attach_shard_scatter`) both
        probe shapes are resolved by the scatter plane instead — the shard
        workers' index probes, merged order-exactly — and the MD answers
        ride back in ``equal_rows`` rather than warming the parent caches.
        """
        union_frontier: set = set()
        for state in states:
            union_frontier |= state.frontier
        database = self.problem.database
        probe_mds = self.config.use_mds and not self.config.exact_match_only
        allowed = [relation for relation in database if self._relation_allowed(relation.schema)]
        equal_probes: list[tuple[RelationInstance, str, set]] = []
        if probe_mds:
            for relation in allowed:
                relation_name = relation.schema.name
                for md in self.problem.mds:
                    if not md.involves(relation_name):
                        continue
                    index = self.similarity_indexes.get(md.name)
                    if index is None:
                        continue
                    other_relation = md.other_relation(relation_name)
                    to_attribute, from_attribute = md.oriented_premises(relation_name)[0]
                    search_keys: set = set()
                    for state in states:
                        known = state.constants_at.get((other_relation, from_attribute))
                        if known:
                            search_keys |= known & state.frontier
                    partner_keys: set = set()
                    id_of = self._interner.id_of
                    for key in search_keys:
                        value = self._interner.value_of(key)
                        for partner in self._partners(index, md.name, key, value):
                            if partner != value:
                                partner_keys.add(id_of(partner))
                    if partner_keys:
                        equal_probes.append((relation, to_attribute, partner_keys))
        if self._shard_scatter is not None:
            tables = self._scatter_depth(allowed, union_frontier, equal_probes)
            if tables is not None:
                return tables
        tables_map: dict[str, dict[object, frozenset[int]]] = {}
        for relation in allowed:
            tables_map[relation.schema.name] = (
                relation.any_rows_table_vectorized(union_frontier)
                if self._vectorized
                else self.probes.any_rows_table(relation, union_frontier)
            )
        for relation, to_attribute, partner_keys in equal_probes:
            if self._vectorized:
                # One numpy pass over the id column, seeding the
                # attribute index with pre-frozen entries for the
                # per-key probes the depth's advance will issue.
                relation.rows_equal_ids_vectorized(to_attribute, partner_keys)
            else:
                self.probes.prefetch_equal(relation, to_attribute, partner_keys)
        return _DepthTables(tables_map, None)

    def _scatter_depth(
        self,
        allowed: Sequence[RelationInstance],
        union_frontier: set,
        equal_probes: Sequence[tuple[RelationInstance, str, set]],
    ) -> _DepthTables | None:
        """One depth's probes through the attached shard scatter plane.

        Frontier and probe keys travel sorted (deterministic wire payloads).
        A *supervised* scatter (:class:`~repro.core.fanout.SaturationFanout`)
        recovers crashed/hung/desynchronised workers internally; only a
        terminal :class:`~repro.core.supervision.FanoutFaultError` reaches
        here, where the fault policy decides — ``"raise"`` propagates,
        every other mode closes the plane, detaches it with a structured
        :class:`~repro.core.supervision.FanoutFault` warning and returns
        ``None`` so the caller falls through to the always-correct unsharded
        path.  A structurally broken *unsupervised* scatter — worker pool
        died, payload refused to pickle — detaches the same way with a
        ``RuntimeWarning``; a *desynchronised* unsupervised worker raises
        instead, because silently recomputing would mask a protocol bug.
        """
        scatter = self._shard_scatter
        assert scatter is not None
        try:
            membership, equality = scatter.depth_tables(
                tuple(relation.schema.name for relation in allowed),
                tuple(sorted(union_frontier)),
                tuple(
                    (
                        relation.schema.name,
                        attribute,
                        relation.schema.position_of(attribute),
                        tuple(sorted(keys)),
                    )
                    for relation, attribute, keys in equal_probes
                ),
            )
        except FanoutFaultError as fault:
            if self.config.fault_policy.mode == "raise":
                raise
            self._detach_scatter(scatter)
            warnings.warn(
                FanoutFault(
                    f"sharded chase scatter demoted after a terminal {fault.kind} "
                    f"fault ({fault}); falling back to the unsharded chase",
                    kind=fault.kind,
                    pool=fault.pool or "saturation",
                    attempt=fault.attempt,
                ),
                stacklevel=4,
            )
            return None
        except (BrokenProcessPool, pickle.PicklingError, OSError) as error:
            self._detach_scatter(scatter)
            warnings.warn(
                f"sharded chase scatter failed ({error!r}); detaching and "
                "falling back to the unsharded chase",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        return _DepthTables(membership, equality)

    def _detach_scatter(self, scatter: "SaturationFanout | SerialShardScatter") -> None:
        """Drop a faulted scatter plane: close every worker, record the demotion.

        Closing applies to attached planes too — a demoted plane is unusable
        either way, leaving its workers up leaked process handles, and the
        owning preparation rebuilds closed planes on demand.
        """
        self._shard_scatter = None
        supervisor = getattr(scatter, "supervisor", None)
        if supervisor is not None:
            supervisor.counters.demotions += 1
        scatter.close()

    # ------------------------------------------------------------------ #
    # per-example chase mechanics (shared by every path)
    # ------------------------------------------------------------------ #
    def _new_state(self, example: Example, probes, memo: dict[object, bool] | None) -> _ChaseState:
        state = _ChaseState(example, self._example_sampler(example))
        target = self.problem.target
        intern = self.problem.database.intern
        for attribute, value in zip(target.attributes, example.values):
            if value is None:
                continue
            state.remember(target.name, attribute.name, intern(value))
        state.frontier = {key for key in state.known_constants if self._chaseable(key, probes, memo)}
        return state

    def _example_sampler(self, example: Example) -> Sampler:
        fingerprint = zlib.crc32(repr(example.values).encode("utf-8"))
        return Sampler((self.config.seed * 1_000_003 + fingerprint) & 0x7FFFFFFF)

    def _advance(self, state: _ChaseState, probes, tables, memo) -> None:
        """One depth of Algorithm 2 for one example, identical on every path.

        *tables* is the depth's prefetched per-relation probe table (batched
        path) or ``None`` (reference path); *memo* the shared chaseability
        memo or ``None``.  Neither changes what is gathered — only where the
        answers come from.
        """
        interner = self._interner
        next_frontier: set = set()
        for relation in self.problem.database:
            if not self._relation_allowed(relation.schema):
                continue
            relation_name = relation.schema.name
            table = tables.any_rows.get(relation_name) if tables is not None else None
            equal_rows = tables.equal_rows if tables is not None else None
            gathered = self._relevant_in_relation(relation, state, probes, table, equal_rows)
            # De-duplicate tuples *by value* — duplicate rows share a
            # canonical row, so the test compares integers — preferring the
            # entry that carries similarity evidence (the MD join is what the
            # clause must be able to express).
            deduplicated: dict[int, tuple[int, SimilarityEvidence | None]] = {}
            seen_rows = state.seen_rows
            for canonical, row, evidence in gathered:
                if (relation_name, canonical) in seen_rows:
                    continue
                if evidence is not None or canonical not in deduplicated:
                    previous = deduplicated.get(canonical)
                    deduplicated[canonical] = (previous[0] if previous is not None else row, evidence)
            fresh = list(deduplicated.items())
            sampled = state.sampler.sample(fresh, self.config.sample_size)
            for canonical, (row, evidence) in sampled:
                if (relation_name, canonical) in seen_rows:
                    continue
                seen_rows.add((relation_name, canonical))
                state.result.tuples.append(relation.tuple_at(row))
                if evidence is not None:
                    state.result.similarity_evidence.append(evidence)
                ids = relation.row_ids(row)
                for attribute, key in zip(relation.schema.attributes, ids):
                    if interner.value_of(key) is None:
                        continue
                    if key not in state.known_constants and self._chaseable(key, probes, memo):
                        next_frontier.add(key)
                    state.remember(relation_name, attribute.name, key)
        state.frontier = next_frontier

    def _relevant_in_relation(
        self, relation: RelationInstance, state: _ChaseState, probes, table, equal_rows=None
    ) -> list[tuple[int, int, SimilarityEvidence | None]]:
        """Rows of one relation reachable from the example's frontier constants.

        Each gathered entry is ``(canonical row, row position, evidence)`` —
        ``evidence`` is ``None`` for exact matches — so that only tuples
        surviving the per-relation sampling are materialised as views and
        contribute similarity and repair literals to the clause.
        """
        rows: set[int] = set()
        if table is not None:
            for key in state.frontier:
                key_rows = table.get(key)
                if key_rows:
                    rows |= key_rows
        else:
            for key in state.frontier:
                rows |= probes.rows_any(relation, key)
        canonical = relation.canonical_rows()
        gathered: list[tuple[int, int, SimilarityEvidence | None]] = [
            (canonical[row], row, None) for row in sorted(rows)
        ]

        if not self.config.use_mds:
            return gathered

        interner = self._interner
        relation_name = relation.schema.name
        for md in self.problem.mds:
            if not md.involves(relation_name):
                continue
            other_relation = md.other_relation(relation_name)
            # Constants known to sit in the MD's premise attribute on the
            # *other* side drive the similarity search over this relation.
            to_attribute, from_attribute = md.oriented_premises(relation_name)[0]
            search_keys = state.constants_at.get((other_relation, from_attribute), _EMPTY_SET) & state.frontier
            if not search_keys:
                continue
            index = self.similarity_indexes.get(md.name)
            # Decoded-value order: deterministic and storage-mode independent
            # (set iteration over ids and over strings would disagree).
            for known_key in sorted(search_keys, key=self._sort_key):
                known_value = interner.value_of(known_key)
                for partner in self._similarity_partners(index, md.name, known_key, known_value, probes):
                    if partner == known_value:
                        # Exact matches already surfaced through the value index.
                        continue
                    evidence = SimilarityEvidence(md.name, known_value, partner)
                    partner_key = interner.id_of(partner)
                    # Scatter/gather depths carry the MD equality answers in
                    # the depth tables; a miss there (a partner discovered
                    # mid-depth, or one with no rows) falls back to the probe
                    # layer — answers are identical, only provenance differs.
                    rows_equal = (
                        equal_rows.get((relation_name, to_attribute, partner_key))
                        if equal_rows is not None
                        else None
                    )
                    if rows_equal is None:
                        rows_equal = probes.rows_equal(relation, to_attribute, partner_key)
                    for row in rows_equal:
                        gathered.append((canonical[row], row, evidence))
        return gathered

    def _sort_key(self, key: object) -> str:
        cached = self._sort_keys.get(key)
        if cached is None:
            cached = repr(self._interner.value_of(key))
            self._sort_keys[key] = cached
        return cached

    def _similarity_partners(
        self, index: SimilarityIndex | None, md_name: str, key: object, value: object, probes
    ) -> tuple[object, ...]:
        if self.config.exact_match_only or index is None:
            # Castor-Exact: MD attributes may be joined, but only on equality;
            # the exact matches are already found through the value index.
            return ()
        if isinstance(probes, _DirectProbes):
            # The uncached reference path must not warm (or profit from) the
            # shared partner cache.
            return tuple(index.partners_of(value))
        return self._partners(index, md_name, key, value)

    def _partners(self, index: SimilarityIndex, md_name: str, key: object, value: object) -> tuple[object, ...]:
        """Cached top-``k_m`` partners, keyed by (md, value id) — the merge in
        ``matches_of`` is not free, and an id pair hashes cheaper than a value."""
        cache_key = (md_name, key)
        cached = self._partner_cache.get(cache_key)
        if cached is None:
            cached = tuple(index.partners_of(value))
            self._partner_cache[cache_key] = cached
        return cached

    _MISSING = object()

    def _chaseable(self, key: object, probes, memo: dict[object, bool] | None) -> bool:
        """Should the value behind id *key* drive lookups and joins?

        Identifiers and textual values drive the chase.  Purely numeric
        values (years, prices, weights) and values that occur very frequently
        across the whole database (genre names, countries) connect
        essentially everything to everything; chasing them would drag
        unrelated tuples into the clause, so they are neither used for
        lookups nor allowed to join tuples that were reached independently
        (see ``DLearnConfig.max_chase_frequency``).  This plays the role of
        the mode declarations of classic ILP systems.
        """
        if memo is not None:
            cached = memo.get(key, self._MISSING)
            if cached is not self._MISSING:
                return cached
        if not isinstance(self._interner.value_of(key), str):
            verdict = False
        else:
            limit = self.config.max_chase_frequency
            verdict = True if limit is None else probes.value_frequency(key) <= limit
        if memo is not None:
            memo[key] = verdict
        return verdict

    def _relation_allowed(self, relation_schema) -> bool:
        """Source restriction used by the Castor-NoMD baseline (see DLearnConfig)."""
        allowed = self.config.restrict_sources
        if allowed is None or relation_schema.source is None:
            return True
        return relation_schema.source in allowed


_EMPTY_SET: frozenset = frozenset()
