"""Bottom-clause construction (Algorithm 2).

Given a training example ``e``, the builder gathers the tuples of the
database that are *relevant* to ``e`` — reachable from the example's
constants through exact value matches or through approximate matches licensed
by the matching dependencies — and turns them into the most specific clause
covering ``e``:

* every gathered tuple becomes a body literal;
* an approximate match contributes a similarity literal and an MD repair
  group (Section 3.2 / Example 4.2);
* CFD violations among the gathered tuples contribute CFD repair groups
  (reduced, right-hand-side scheme by default — see
  :func:`repro.core.repair_literals.cfd_rhs_repair_literals`).

The same builder produces *ground* bottom clauses (constants kept in place of
variables) which coverage testing subsumes learned clauses against
(Section 4.3).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..constraints.cfds import ConditionalFunctionalDependency
from ..constraints.mds import MatchingDependency
from ..db.instance import DatabaseInstance
from ..db.sampling import Sampler
from ..db.tuples import Tuple
from ..logic.atoms import Literal, relation_literal
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Term, Variable, VariableFactory
from ..similarity.index import SimilarityIndex
from .config import DLearnConfig
from .problem import Example, LearningProblem
from .repair_literals import cfd_lhs_repair_literals, cfd_rhs_repair_literals, md_repair_literals

__all__ = ["BottomClauseBuilder", "RelevantTuples", "SimilarityEvidence"]


@dataclass(frozen=True, slots=True)
class SimilarityEvidence:
    """One approximate match discovered while gathering relevant tuples.

    ``known_value`` was already in the seen-constant set ``M``;
    ``matched_value`` is the similar value found in ``relation.attribute`` of
    the matched tuple, licensed by MD ``md_name``.
    """

    md_name: str
    known_value: object
    matched_value: object


@dataclass
class RelevantTuples:
    """The information relevant to one example (``I_e`` in Algorithm 2)."""

    tuples: list[Tuple] = field(default_factory=list)
    similarity_evidence: list[SimilarityEvidence] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tuples)


class BottomClauseBuilder:
    """Builds (ground) bottom clauses for training examples.

    Parameters
    ----------
    problem:
        The learning problem (database, target, constraints, examples).
    config:
        Learner configuration; the builder uses ``iterations`` (``d``),
        ``sample_size``, ``use_mds`` / ``use_cfds`` / ``exact_match_only``
        and ``max_repair_groups_per_clause``.
    similarity_indexes:
        Precomputed top-``k_m`` similarity indexes keyed by MD name (from
        :meth:`repro.core.problem.LearningProblem.build_similarity_indexes`).
    sampler:
        Seeded sampler used to bound the number of literals per relation.
    """

    def __init__(
        self,
        problem: LearningProblem,
        config: DLearnConfig,
        similarity_indexes: dict[str, SimilarityIndex] | None = None,
        sampler: Sampler | None = None,
    ) -> None:
        self.problem = problem
        self.config = config
        self.similarity_indexes = similarity_indexes or {}
        self.sampler = sampler or Sampler(config.seed)
        self._relevant_cache: dict[tuple[object, ...], RelevantTuples] = {}

    # ------------------------------------------------------------------ #
    # relevant-tuple gathering (Algorithm 2, lines 1-12)
    # ------------------------------------------------------------------ #
    def gather_relevant(self, example: Example) -> RelevantTuples:
        """Collect the tuples connected to *example* by exact or similarity matches.

        Gathering is deterministic per example (the sampling RNG is seeded
        from the example's values and the configured seed) and cached, so the
        bottom clause and the ground bottom clause of the same example are
        built from exactly the same relevant tuples — which is what makes the
        bottom clause cover its own example (Proposition 4.3) under the
        subsumption-based coverage test.
        """
        if example.values in self._relevant_cache:
            return self._relevant_cache[example.values]
        relevant = self._gather_relevant_uncached(example)
        self._relevant_cache[example.values] = relevant
        return relevant

    def _example_sampler(self, example: Example) -> Sampler:
        fingerprint = zlib.crc32(repr(example.values).encode("utf-8"))
        return Sampler((self.config.seed * 1_000_003 + fingerprint) & 0x7FFFFFFF)

    def _gather_relevant_uncached(self, example: Example) -> RelevantTuples:
        database = self.problem.database
        sampler = self._example_sampler(example)
        target = self.problem.target
        known_constants: set[object] = set()
        constants_at: dict[tuple[str, str], set[object]] = {}
        result = RelevantTuples()
        seen_tuples: set[Tuple] = set()

        def remember(relation_name: str, attribute_name: str, value: object) -> None:
            if value is None:
                return
            known_constants.add(value)
            constants_at.setdefault((relation_name, attribute_name), set()).add(value)

        for attribute, value in zip(target.attributes, example.values):
            remember(target.name, attribute.name, value)

        frontier = {value for value in known_constants if self._chaseable(value)}
        for _ in range(self.config.iterations):
            if not frontier:
                break
            next_frontier: set[object] = set()
            for relation in database:
                if not self._relation_allowed(relation.schema):
                    continue
                gathered = self._relevant_in_relation(relation, frontier, constants_at)
                # De-duplicate tuples reachable along several paths, preferring
                # the entry that carries similarity evidence (the MD join is
                # what the clause must be able to express).
                deduplicated: dict[Tuple, SimilarityEvidence | None] = {}
                for tup, evidence in gathered:
                    if tup in seen_tuples:
                        continue
                    if evidence is not None or tup not in deduplicated:
                        deduplicated[tup] = evidence
                fresh = list(deduplicated.items())
                sampled = sampler.sample(fresh, self.config.sample_size)
                for tup, evidence in sampled:
                    if tup in seen_tuples:
                        continue
                    seen_tuples.add(tup)
                    result.tuples.append(tup)
                    if evidence is not None:
                        result.similarity_evidence.append(evidence)
                    for attribute, value in zip(relation.schema.attributes, tup.values):
                        if value is not None and value not in known_constants and self._chaseable(value):
                            next_frontier.add(value)
                        remember(relation.schema.name, attribute.name, value)
            frontier = next_frontier
        return result

    def _chaseable(self, value: object) -> bool:
        """Should *value* drive lookups and joins?

        Identifiers and textual values drive the chase.  Purely numeric
        values (years, prices, weights) and values that occur very frequently
        across the whole database (genre names, countries) connect
        essentially everything to everything; chasing them would drag
        unrelated tuples into the clause, so they are neither used for
        lookups nor allowed to join tuples that were reached independently
        (see ``DLearnConfig.max_chase_frequency``).  This plays the role of
        the mode declarations of classic ILP systems.
        """
        if not isinstance(value, str):
            return False
        limit = self.config.max_chase_frequency
        if limit is None:
            return True
        return self.problem.database.value_frequency(value) <= limit

    def _relation_allowed(self, relation_schema) -> bool:
        """Source restriction used by the Castor-NoMD baseline (see DLearnConfig)."""
        allowed = self.config.restrict_sources
        if allowed is None or relation_schema.source is None:
            return True
        return relation_schema.source in allowed

    def _relevant_in_relation(
        self,
        relation,
        frontier: set[object],
        constants_at: dict[tuple[str, str], set[object]],
    ) -> list[tuple[Tuple, SimilarityEvidence | None]]:
        """Tuples of one relation reachable from the frontier constants.

        Each gathered tuple is paired with the similarity evidence that
        produced it (``None`` for exact matches), so that only tuples
        surviving the per-relation sampling contribute similarity and repair
        literals to the clause.
        """
        gathered: list[tuple[Tuple, SimilarityEvidence | None]] = [
            (tup, None) for tup in relation.select_any_attribute(frontier)
        ]

        if not self.config.use_mds:
            return gathered

        relation_name = relation.schema.name
        for md in self.problem.mds:
            if not md.involves(relation_name):
                continue
            other_relation = md.other_relation(relation_name)
            # Constants known to sit in the MD's premise attribute on the
            # *other* side drive the similarity search over this relation.
            to_attribute, from_attribute = md.oriented_premises(relation_name)[0]
            search_values = constants_at.get((other_relation, from_attribute), set()) & frontier
            if not search_values:
                continue
            index = self.similarity_indexes.get(md.name)
            for known_value in search_values:
                for partner in self._partners(index, known_value):
                    if partner == known_value:
                        # Exact matches already surfaced through the value index.
                        continue
                    evidence = SimilarityEvidence(md.name, known_value, partner)
                    for tup in relation.select_equal(to_attribute, partner):
                        gathered.append((tup, evidence))
        return gathered

    def _partners(self, index: SimilarityIndex | None, value: object) -> list[object]:
        if self.config.exact_match_only or index is None:
            # Castor-Exact: MD attributes may be joined, but only on equality;
            # the exact matches are already found through the value index.
            return []
        return index.partners_of(value)

    # ------------------------------------------------------------------ #
    # clause construction (Algorithm 2, line 13)
    # ------------------------------------------------------------------ #
    def build(self, example: Example, *, ground: bool = False) -> HornClause:
        """Build the (ground) bottom clause for *example*.

        With ``ground=False`` every constant is replaced by a variable except
        the values of the problem's ``constant_attributes`` (categorical
        attributes whose constants the learned clauses may test directly).
        With ``ground=True`` the database constants stay in place — this is
        the ground bottom clause used as the specific side of coverage
        subsumption tests.  Repair-literal replacement variables are fresh
        variables in both cases.
        """
        relevant = self.gather_relevant(example)
        factory = VariableFactory(prefix="v")
        term_of: dict[object, Term] = {}
        example_values = {value for value in example.values if value is not None}

        def variable_for(value: object) -> Term:
            if value not in term_of:
                term_of[value] = Constant(value) if ground else factory.fresh()
            return term_of[value]

        def term_for(relation_name: str, attribute_name: str, value: object) -> Term:
            if not ground and self.problem.keeps_constant(relation_name, attribute_name):
                return Constant(value)
            if ground:
                return variable_for(value)
            if value in example_values or self._chaseable(value):
                # Values that drive the chase (and the example's own values)
                # share one variable across all their occurrences — they are
                # the clause's join keys.
                return variable_for(value)
            # Incidental values (years, prices, popular strings) do not create
            # joins between independently reached tuples: every occurrence
            # gets its own variable.
            return factory.fresh()

        target = self.problem.target
        head_terms = tuple(
            term_for(target.name, attribute.name, value)
            for attribute, value in zip(target.attributes, example.values)
        )
        head = relation_literal(target.name, *head_terms)

        body: list[Literal] = []
        literal_sources: list[tuple[Literal, Tuple]] = []
        for tup in relevant.tuples:
            schema = self.problem.database.relation(tup.relation).schema
            terms = tuple(
                term_for(schema.name, attribute.name, value)
                for attribute, value in zip(schema.attributes, tup.values)
            )
            literal = relation_literal(schema.name, *terms)
            body.append(literal)
            literal_sources.append((literal, tup))

        if self.config.use_mds:
            body.extend(self._md_repair_body(relevant, variable_for, factory))
        if self.config.use_cfds and self.problem.cfds:
            body.extend(self._cfd_repair_body(literal_sources, factory))

        clause = HornClause(head, tuple(body))
        if ground:
            # In a ground clause connectivity flows through shared constants,
            # which the variable-based pruning below cannot see; leave it as is.
            return clause
        # Tuples reached through a shared categorical constant (kept as a
        # constant, not a variable) have no variable path to the head; they
        # carry no usable join structure, so drop them.
        return clause.prune_disconnected().prune_dangling_restrictions()

    def _md_repair_body(self, relevant: RelevantTuples, variable_for, factory: VariableFactory) -> list[Literal]:
        literals: list[Literal] = []
        seen_pairs: set[tuple[str, object, object]] = set()
        for index, evidence in enumerate(relevant.similarity_evidence):
            key = (evidence.md_name, evidence.known_value, evidence.matched_value)
            mirrored = (evidence.md_name, evidence.matched_value, evidence.known_value)
            if key in seen_pairs or mirrored in seen_pairs:
                continue
            seen_pairs.add(key)
            left_term = variable_for(evidence.known_value)
            right_term = variable_for(evidence.matched_value)
            if left_term == right_term:
                continue
            provenance = f"md:{evidence.md_name}:{index}"
            literals.extend(md_repair_literals(left_term, right_term, factory, provenance))
        return literals

    def _cfd_repair_body(
        self, literal_sources: Sequence[tuple[Literal, Tuple]], factory: VariableFactory
    ) -> list[Literal]:
        """Scan the clause for CFD violations and add their repair groups (Section 4.1)."""
        literals: list[Literal] = []
        groups_added = 0
        for cfd in self.problem.cfds:
            relation_schema = self.problem.database.relation(cfd.relation).schema
            members = [(lit, tup) for lit, tup in literal_sources if lit.predicate == cfd.relation]
            for i, (first_literal, first_tuple) in enumerate(members):
                for second_literal, second_tuple in members[i + 1 :]:
                    if groups_added >= self.config.max_repair_groups_per_clause:
                        return literals
                    if not cfd.violated_by(relation_schema, first_tuple, second_tuple):
                        continue
                    lhs_pairs = [
                        (
                            first_literal.terms[relation_schema.position_of(attribute)],
                            second_literal.terms[relation_schema.position_of(attribute)],
                        )
                        for attribute in cfd.lhs
                    ]
                    rhs_position = relation_schema.position_of(cfd.rhs)
                    rhs_first = first_literal.terms[rhs_position]
                    rhs_second = second_literal.terms[rhs_position]
                    if rhs_first == rhs_second:
                        continue
                    provenance = f"cfd:{cfd.name}:{groups_added}"
                    literals.extend(cfd_rhs_repair_literals(lhs_pairs, rhs_first, rhs_second, provenance))
                    groups_added += 1
        return literals
