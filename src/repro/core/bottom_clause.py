"""Bottom-clause construction (Algorithm 2).

Given a training example ``e``, the builder gathers the tuples of the
database that are *relevant* to ``e`` — reachable from the example's
constants through exact value matches or through approximate matches licensed
by the matching dependencies — and turns them into the most specific clause
covering ``e``:

* every gathered tuple becomes a body literal;
* an approximate match contributes a similarity literal and an MD repair
  group (Section 3.2 / Example 4.2);
* CFD violations among the gathered tuples contribute CFD repair groups
  (reduced, right-hand-side scheme by default — see
  :func:`repro.core.repair_literals.cfd_rhs_repair_literals`).

The same builder produces *ground* bottom clauses (constants kept in place of
variables) which coverage testing subsumes learned clauses against
(Section 4.3).

The work is split between two cooperating components:

* :class:`repro.core.saturation.FrontierChase` gathers the relevant tuples
  (Algorithm 2, lines 1-12) — for many examples in one batched pass over the
  database when driven through :meth:`BottomClauseBuilder.gather_relevant_many`;
* :class:`ClauseAssembler` turns cached
  :class:`~repro.core.saturation.RelevantTuples` into the (ground) bottom
  clause (Algorithm 2, line 13).

:class:`BottomClauseBuilder` composes the two behind the interface the rest
of the system (coverage engine, covering loop, tests) programs against.
"""

from __future__ import annotations

from typing import Sequence

from ..db.sampling import Sampler
from ..db.tuples import Tuple
from ..logic.atoms import Literal, relation_literal
from ..logic.clauses import HornClause
from ..logic.terms import Constant, Term, VariableFactory
from ..similarity.index import SimilarityIndex
from .config import DLearnConfig
from .problem import Example, LearningProblem
from .repair_literals import cfd_rhs_repair_literals, md_repair_literals
from .saturation import FrontierChase, RelevantTuples, SimilarityEvidence

__all__ = ["BottomClauseBuilder", "ClauseAssembler", "RelevantTuples", "SimilarityEvidence"]


class ClauseAssembler:
    """Turns gathered :class:`RelevantTuples` into (ground) bottom clauses.

    The assembler is stateless apart from its configuration: given the same
    relevant tuples it always produces the same clause, so cached chase
    results can be re-assembled freely (e.g. the variabilised bottom clause
    and the ground bottom clause of one example share one cache entry).

    Parameters
    ----------
    problem:
        The learning problem (schemas, constraints, constant attributes).
    config:
        Learner configuration; the assembler uses ``use_mds`` / ``use_cfds``
        and ``max_repair_groups_per_clause``.
    chase:
        The frontier chase the tuples came from; consulted for the
        chaseability test that decides which values act as join keys.
    """

    def __init__(self, problem: LearningProblem, config: DLearnConfig, chase: FrontierChase) -> None:
        self.problem = problem
        self.config = config
        self.chase = chase

    def assemble(self, example: Example, relevant: RelevantTuples, *, ground: bool = False) -> HornClause:
        """Build the (ground) bottom clause of *example* from its relevant tuples.

        With ``ground=False`` every constant is replaced by a variable except
        the values of the problem's ``constant_attributes`` (categorical
        attributes whose constants the learned clauses may test directly).
        With ``ground=True`` the database constants stay in place — this is
        the ground bottom clause used as the specific side of coverage
        subsumption tests.  Repair-literal replacement variables are fresh
        variables in both cases.
        """
        factory = VariableFactory(prefix="v")
        term_of: dict[object, Term] = {}
        example_values = {value for value in example.values if value is not None}

        def variable_for(value: object) -> Term:
            if value not in term_of:
                term_of[value] = Constant(value) if ground else factory.fresh()
            return term_of[value]

        def term_for(relation_name: str, attribute_name: str, value: object) -> Term:
            if not ground and self.problem.keeps_constant(relation_name, attribute_name):
                return Constant(value)
            if ground:
                return variable_for(value)
            if value in example_values or self.chase.chaseable(value):
                # Values that drive the chase (and the example's own values)
                # share one variable across all their occurrences — they are
                # the clause's join keys.
                return variable_for(value)
            # Incidental values (years, prices, popular strings) do not create
            # joins between independently reached tuples: every occurrence
            # gets its own variable.
            return factory.fresh()

        target = self.problem.target
        head_terms = tuple(
            term_for(target.name, attribute.name, value)
            for attribute, value in zip(target.attributes, example.values)
        )
        head = relation_literal(target.name, *head_terms)

        body: list[Literal] = []
        literal_sources: list[tuple[Literal, Tuple]] = []
        for tup in relevant.tuples:
            schema = self.problem.database.relation(tup.relation).schema
            terms = tuple(
                term_for(schema.name, attribute.name, value)
                for attribute, value in zip(schema.attributes, tup.values)
            )
            literal = relation_literal(schema.name, *terms)
            body.append(literal)
            literal_sources.append((literal, tup))

        if self.config.use_mds:
            body.extend(self._md_repair_body(relevant, variable_for, factory))
        if self.config.use_cfds and self.problem.cfds:
            body.extend(self._cfd_repair_body(literal_sources, factory))

        clause = HornClause(head, tuple(body))
        if ground:
            # In a ground clause connectivity flows through shared constants,
            # which the variable-based pruning below cannot see; leave it as is.
            return clause
        # Tuples reached through a shared categorical constant (kept as a
        # constant, not a variable) have no variable path to the head; they
        # carry no usable join structure, so drop them.
        return clause.prune_disconnected().prune_dangling_restrictions()

    def _md_repair_body(self, relevant: RelevantTuples, variable_for, factory: VariableFactory) -> list[Literal]:
        literals: list[Literal] = []
        seen_pairs: set[tuple[str, object, object]] = set()
        for index, evidence in enumerate(relevant.similarity_evidence):
            key = (evidence.md_name, evidence.known_value, evidence.matched_value)
            mirrored = (evidence.md_name, evidence.matched_value, evidence.known_value)
            if key in seen_pairs or mirrored in seen_pairs:
                continue
            seen_pairs.add(key)
            left_term = variable_for(evidence.known_value)
            right_term = variable_for(evidence.matched_value)
            if left_term == right_term:
                continue
            provenance = f"md:{evidence.md_name}:{index}"
            literals.extend(md_repair_literals(left_term, right_term, factory, provenance))
        return literals

    def _cfd_repair_body(
        self, literal_sources: Sequence[tuple[Literal, Tuple]], factory: VariableFactory
    ) -> list[Literal]:
        """Scan the clause for CFD violations and add their repair groups (Section 4.1)."""
        literals: list[Literal] = []
        groups_added = 0
        for cfd in self.problem.cfds:
            relation_schema = self.problem.database.relation(cfd.relation).schema
            members = [(lit, tup) for lit, tup in literal_sources if lit.predicate == cfd.relation]
            for i, (first_literal, first_tuple) in enumerate(members):
                for second_literal, second_tuple in members[i + 1 :]:
                    if groups_added >= self.config.max_repair_groups_per_clause:
                        return literals
                    if not cfd.violated_by(relation_schema, first_tuple, second_tuple):
                        continue
                    lhs_pairs = [
                        (
                            first_literal.terms[relation_schema.position_of(attribute)],
                            second_literal.terms[relation_schema.position_of(attribute)],
                        )
                        for attribute in cfd.lhs
                    ]
                    rhs_position = relation_schema.position_of(cfd.rhs)
                    rhs_first = first_literal.terms[rhs_position]
                    rhs_second = second_literal.terms[rhs_position]
                    if rhs_first == rhs_second:
                        continue
                    provenance = f"cfd:{cfd.name}:{groups_added}"
                    literals.extend(cfd_rhs_repair_literals(lhs_pairs, rhs_first, rhs_second, provenance))
                    groups_added += 1
        return literals


class BottomClauseBuilder:
    """Builds (ground) bottom clauses for training examples.

    A thin facade over :class:`~repro.core.saturation.FrontierChase` (tuple
    gathering, batched across examples) and :class:`ClauseAssembler` (clause
    construction).  Learning sessions construct the two components themselves
    so chases can share probe and saturation caches; constructing a builder
    directly — the historical interface — wires up private ones.

    Parameters
    ----------
    problem:
        The learning problem (database, target, constraints, examples).
    config:
        Learner configuration (see the two components for the knobs used).
    similarity_indexes:
        Precomputed top-``k_m`` similarity indexes keyed by MD name (from
        :meth:`repro.core.problem.LearningProblem.build_similarity_indexes`).
    sampler:
        Unused; kept for signature compatibility.  Relevant-tuple sampling is
        seeded per example from the example's values and ``config.seed``, so
        chase results do not depend on any shared sampler state.
    chase / assembler:
        Pre-built components (supplied by :class:`repro.core.session.LearningSession`).
    """

    def __init__(
        self,
        problem: LearningProblem,
        config: DLearnConfig,
        similarity_indexes: dict[str, SimilarityIndex] | None = None,
        sampler: Sampler | None = None,
        *,
        chase: FrontierChase | None = None,
        assembler: ClauseAssembler | None = None,
    ) -> None:
        self.problem = problem
        self.config = config
        self.similarity_indexes = similarity_indexes or {}
        self.chase = chase or FrontierChase(problem, config, self.similarity_indexes)
        self.assembler = assembler or ClauseAssembler(problem, config, self.chase)

    # ------------------------------------------------------------------ #
    # relevant-tuple gathering (Algorithm 2, lines 1-12)
    # ------------------------------------------------------------------ #
    def gather_relevant(self, example: Example) -> RelevantTuples:
        """Collect the tuples connected to *example* by exact or similarity matches.

        Gathering is deterministic per example (the sampling RNG is seeded
        from the example's values and the configured seed) and cached, so the
        bottom clause and the ground bottom clause of the same example are
        built from exactly the same relevant tuples — which is what makes the
        bottom clause cover its own example (Proposition 4.3) under the
        subsumption-based coverage test.
        """
        return self.chase.relevant(example)

    def gather_relevant_many(self, examples: Sequence[Example]) -> list[RelevantTuples]:
        """Gather relevant tuples for many examples in one batched chase."""
        return self.chase.relevant_many(examples)

    # ------------------------------------------------------------------ #
    # clause construction (Algorithm 2, line 13)
    # ------------------------------------------------------------------ #
    def build(self, example: Example, *, ground: bool = False) -> HornClause:
        """Build the (ground) bottom clause for *example* (see :meth:`ClauseAssembler.assemble`)."""
        return self.assembler.assemble(example, self.chase.relevant(example), ground=ground)
