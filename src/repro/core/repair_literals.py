"""Repair-literal machinery: building repair groups and expanding repaired clauses.

Section 3.2 extends the clause language with repair literals ``V_c(x, v_x)``.
A clause containing repair literals is a *compact representation* of a set of
repaired clauses; this module implements

* builders that create the repair literals for an MD match and for a CFD
  violation found inside a bottom clause (used by
  :mod:`repro.core.bottom_clause`), and
* :func:`repaired_clauses`, which expands a clause into its repaired clauses
  by progressively applying / eliminating repair literals exactly as
  described in Section 3.2 (conditions are evaluated against the clause's
  restriction literals; different application orders may yield different
  repaired clauses, so the expansion branches over orders and de-duplicates).

Repair literals introduced for one constraint application share a
``provenance`` tag and form a *group*:

* the two repair literals of an MD match (both sides must be unified
  together, cf. Example 3.2) form one group;
* each alternative fix of a CFD violation (set ``z := t``, set ``t := z``,
  or — in the *full* scheme — modify one of the left-hand sides to break the
  match) is its own group, and the groups exclude one another through their
  conditions and restriction literals, exactly as in Example 3.1/3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic.atoms import (
    Comparison,
    ComparisonOp,
    Condition,
    Literal,
    LiteralKind,
    equality_literal,
    inequality_literal,
    repair_literal,
    similarity_literal,
)
from ..logic.clauses import HornClause
from ..logic.terms import Term, Variable, VariableFactory

__all__ = [
    "md_repair_literals",
    "cfd_rhs_repair_literals",
    "cfd_lhs_repair_literals",
    "repair_groups",
    "evaluate_condition",
    "repaired_clauses",
    "strip_repair_machinery",
]


# ---------------------------------------------------------------------- #
# builders
# ---------------------------------------------------------------------- #
def md_repair_literals(
    left: Term,
    right: Term,
    factory: VariableFactory,
    provenance: str,
) -> list[Literal]:
    """Repair literals for one MD match between the terms *left* and *right*.

    Returns the similarity literal ``left ≈ right``, the two repair literals
    ``V_{left≈right}(left, v_l)`` and ``V_{left≈right}(right, v_r)``, and the
    restriction literal ``v_l = v_r`` (Section 3.2, Example 3.2).
    """
    condition = Condition.of(Comparison(ComparisonOp.SIM, left, right))
    replacement_left = factory.fresh("u")
    replacement_right = factory.fresh("u")
    return [
        similarity_literal(left, right, provenance=provenance),
        repair_literal(left, replacement_left, condition, provenance=provenance),
        repair_literal(right, replacement_right, condition, provenance=provenance),
        equality_literal(replacement_left, replacement_right, provenance=provenance),
    ]


def cfd_rhs_repair_literals(
    lhs_pairs: Sequence[tuple[Term, Term]],
    rhs_first: Term,
    rhs_second: Term,
    provenance: str,
) -> list[Literal]:
    """Repair literals for a CFD violation, reduced (right-hand-side) scheme.

    ``lhs_pairs`` holds the pairs of terms the two violating literals carry in
    the CFD's left-hand-side positions; ``rhs_first`` / ``rhs_second`` are the
    two (different) right-hand-side terms.  Following the end of Section 4.1,
    only the repairs that unify the right-hand sides using *current* variables
    are produced — ``V_c(z, t)`` and ``V_c(t, z)`` with
    ``c = (lhs equal) ∧ z ≠ t`` — which is the minimal-repair semantics.
    Each literal is its own group (alternative fixes exclude each other via
    the ``z ≠ t`` conjunct).
    """
    comparisons = [Comparison(ComparisonOp.EQ, a, b) for a, b in lhs_pairs if a != b]
    comparisons.append(Comparison(ComparisonOp.NEQ, rhs_first, rhs_second))
    condition = Condition(frozenset(comparisons))
    return [
        repair_literal(rhs_first, rhs_second, condition, provenance=f"{provenance}:rhs_fwd"),
        repair_literal(rhs_second, rhs_first, condition, provenance=f"{provenance}:rhs_bwd"),
    ]


def cfd_lhs_repair_literals(
    lhs_pairs: Sequence[tuple[Term, Term]],
    rhs_first: Term,
    rhs_second: Term,
    factory: VariableFactory,
    provenance: str,
) -> list[Literal]:
    """Repair literals for the *full* scheme: also repair by modifying a left-hand side.

    For the first left-hand-side pair ``(x1, x2)`` two further alternative
    fixes are produced: replace ``x1`` with a fresh value different from
    ``x2`` or vice versa, mirroring Example 3.1.  The restriction literals
    ``v_{x1} ≠ x2`` / ``v_{x2} ≠ x1`` record that the fresh value must break
    the left-hand-side match.
    """
    if not lhs_pairs:
        return []
    x1, x2 = lhs_pairs[0]
    comparisons = [Comparison(ComparisonOp.EQ, a, b) for a, b in lhs_pairs if a != b]
    comparisons.append(Comparison(ComparisonOp.NEQ, rhs_first, rhs_second))
    condition = Condition(frozenset(comparisons))
    fresh_first = factory.fresh("w")
    fresh_second = factory.fresh("w")
    return [
        repair_literal(x1, fresh_first, condition, provenance=f"{provenance}:lhs_fst"),
        inequality_literal(fresh_first, x2, provenance=f"{provenance}:lhs_fst"),
        repair_literal(x2, fresh_second, condition, provenance=f"{provenance}:lhs_snd"),
        inequality_literal(fresh_second, x1, provenance=f"{provenance}:lhs_snd"),
    ]


# ---------------------------------------------------------------------- #
# grouping and condition evaluation
# ---------------------------------------------------------------------- #
def repair_groups(clause: HornClause) -> dict[str, list[Literal]]:
    """Group the clause's repair literals by provenance tag.

    Repair literals without a provenance each form a singleton group keyed by
    their rendering — they can only have been introduced by hand-written
    clauses in tests.
    """
    groups: dict[str, list[Literal]] = {}
    for literal in clause.repair_literals:
        key = literal.provenance or f"anonymous:{literal}"
        groups.setdefault(key, []).append(literal)
    return groups


def _equality_pairs(clause: HornClause) -> set[frozenset[Term]]:
    return {
        frozenset(literal.terms)
        for literal in clause.body
        if literal.kind is LiteralKind.EQUALITY
    }


def _similarity_pairs(clause: HornClause) -> set[frozenset[Term]]:
    return {
        frozenset(literal.terms)
        for literal in clause.body
        if literal.kind is LiteralKind.SIMILARITY
    }


def evaluate_condition(condition: Condition, clause: HornClause) -> bool:
    """Evaluate a repair condition against the clause's literals (Section 3.2).

    * ``a = b`` holds when the terms are identical or the clause contains the
      equality literal;
    * ``a ≠ b`` holds when the terms are distinct and the clause contains no
      equality literal between them (the paper's reading of the inequalities
      kept inside conditions);
    * ``a ≈ b`` holds when the terms are identical or the clause contains the
      similarity literal.
    """
    equalities = _equality_pairs(clause)
    similarities = _similarity_pairs(clause)
    for comparison in condition.comparisons:
        pair = frozenset((comparison.left, comparison.right))
        if comparison.op is ComparisonOp.EQ:
            if comparison.left != comparison.right and pair not in equalities:
                return False
        elif comparison.op is ComparisonOp.NEQ:
            if comparison.left == comparison.right or pair in equalities:
                return False
        elif comparison.op is ComparisonOp.SIM:
            if comparison.left != comparison.right and pair not in similarities:
                return False
    return True


# ---------------------------------------------------------------------- #
# applying groups / expanding repaired clauses
# ---------------------------------------------------------------------- #
def _apply_or_drop_group(clause: HornClause, provenance: str) -> HornClause:
    """Apply one repair group if its condition holds, otherwise eliminate it."""
    group = [lit for lit in clause.repair_literals if (lit.provenance or f"anonymous:{lit}") == provenance]
    if not group:
        return clause
    condition_holds = all(evaluate_condition(literal.condition, clause) for literal in group)
    remaining = [lit for lit in clause.body if lit not in group]
    if not condition_holds:
        return HornClause(clause.head, tuple(remaining))

    mapping: dict[Term, Term] = {literal.terms[0]: literal.terms[1] for literal in group}
    new_body: list[Literal] = []
    for literal in remaining:
        if literal.kind is LiteralKind.SIMILARITY and any(term in mapping for term in literal.terms):
            # The similarity observation was about the original dirty value;
            # once that value is unified to a fresh one, the observation is
            # consumed and must not licence further repairs (Example 3.3).
            continue
        new_body.append(literal.replace_terms(mapping))
    new_head = clause.head.replace_terms(mapping)
    return HornClause(new_head, tuple(new_body))


def _variable_clusters(groups: dict[str, list[Literal]]) -> list[list[str]]:
    """Partition repair groups into clusters that share variables.

    Groups in different clusters cannot influence each other's conditions, so
    order branching is only needed inside a cluster.
    """
    provenance_vars: dict[str, set[Variable]] = {}
    for provenance, literals in groups.items():
        variables: set[Variable] = set()
        for literal in literals:
            variables |= literal.variables()
        provenance_vars[provenance] = variables

    clusters: list[tuple[set[str], set[Variable]]] = []
    for provenance, variables in provenance_vars.items():
        overlapping = [c for c in clusters if c[1] & variables]
        merged_names = {provenance}
        merged_vars = set(variables)
        for cluster in overlapping:
            merged_names |= cluster[0]
            merged_vars |= cluster[1]
            clusters.remove(cluster)
        clusters.append((merged_names, merged_vars))
    return [sorted(names) for names, _ in clusters]


def _expand_cluster(clause: HornClause, provenances: tuple[str, ...], max_results: int) -> set[HornClause]:
    """Branch over the order in which the cluster's groups are processed."""
    if not provenances:
        return {clause}
    results: set[HornClause] = set()
    for index, provenance in enumerate(provenances):
        outcome = _apply_or_drop_group(clause, provenance)
        rest = provenances[:index] + provenances[index + 1 :]
        results |= _expand_cluster(outcome, rest, max_results)
        if len(results) >= max_results:
            break
    return results


def repaired_clauses(
    clause: HornClause,
    *,
    only_provenance_prefix: str | None = None,
    max_results: int = 64,
) -> list[HornClause]:
    """Expand a clause into its repaired clauses (Section 3.2).

    ``only_provenance_prefix`` restricts the expansion to repair groups whose
    provenance starts with the prefix (e.g. ``"cfd:"``), leaving the other
    repair literals in place — this is how coverage testing expands only the
    CFD repairs while relying on Theorem 4.9 for the MD ones.

    The result is de-duplicated; ``max_results`` bounds the combinatorial
    blow-up (beyond the cap further variants are dropped, which only makes
    coverage estimates more conservative).
    """
    groups = repair_groups(clause)
    if only_provenance_prefix is not None:
        groups = {p: literals for p, literals in groups.items() if p.startswith(only_provenance_prefix)}
    if not groups:
        return [clause]

    clusters = _variable_clusters(groups)
    variants: list[HornClause] = [clause]
    for cluster in clusters:
        next_variants: set[HornClause] = set()
        for variant in variants:
            next_variants |= _expand_cluster(variant, tuple(cluster), max_results)
            if len(next_variants) >= max_results:
                break
        # Sorted before truncation: slicing a set keeps a hash-order-dependent
        # (i.e. per-process random) subset of the capped variants.
        variants = sorted(next_variants, key=str)[:max_results]

    cleaned = [variant.prune_dangling_restrictions() for variant in variants]
    # Deterministic order keeps tests and the learner reproducible.
    unique = sorted(set(cleaned), key=str)
    return unique


def strip_repair_machinery(clause: HornClause) -> HornClause:
    """Remove all repair literals and dangling restrictions without applying them.

    Used by the Castor baselines, which ignore the repair semantics entirely.
    """
    body = tuple(lit for lit in clause.body if not lit.is_repair)
    return HornClause(clause.head, body).prune_dangling_restrictions()
