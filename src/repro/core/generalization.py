"""Clause generalisation (Section 4.2).

DLearn generalises a bottom clause the way ProGolem does, but extended to the
repair-literal language:

* :meth:`Generalizer.armg` computes the asymmetric relative minimal
  generalisation of a clause with respect to one positive example — body
  literals are considered in their derivation order and every *blocking*
  literal (a literal whose inclusion prevents the clause from covering the
  example) is dropped, together with the repair literals whose only
  connection to the head went through it;
* :meth:`Generalizer.learn_clause` runs the paper's search: propose one ARMG
  per example of a random sample ``E+_s``, keep the highest-scoring
  candidate, and repeat until the score stops improving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..db.sampling import Sampler
from ..logic.clauses import HornClause

from .config import DLearnConfig
from .coverage import CoverageEngine
from .problem import Example
from .scoring import ClauseStats, score_clause

__all__ = ["Generalizer", "LearnedClause"]


@dataclass(frozen=True)
class LearnedClause:
    """A clause produced by the generalisation search, with its statistics."""

    clause: HornClause
    stats: ClauseStats


class Generalizer:
    """ProGolem-style generalisation over the repair-literal clause language."""

    def __init__(self, engine: CoverageEngine, config: DLearnConfig, sampler: Sampler | None = None) -> None:
        self.engine = engine
        self.config = config
        self.sampler = sampler or Sampler(config.seed)

    # ------------------------------------------------------------------ #
    # ARMG: generalise one clause to cover one more example
    # ------------------------------------------------------------------ #
    def armg(self, clause: HornClause, example: Example) -> HornClause:
        """Drop the blocking literals of *clause* so that it covers *example*.

        The clause's body is considered in its construction order — the order
        in which bottom-clause construction derived the literals from the seed
        example, which places the seed's own tuples before tuples that were
        only reached through longer chains.  Processing in derivation order
        matters: it lets the literals that carry the clause's join structure
        bind their variables before incidental literals that merely share a
        variable (such as a year) get a chance to bind them to something else
        and thereby turn the important literal into a blocking one.  Every
        blocking literal — one that cannot be mapped into the example's
        ground bottom clause consistently with the literals retained so far —
        is dropped
        (:meth:`repro.logic.subsumption.SubsumptionChecker.retained_generalization`).
        Finally, literals that lost their connection to the head (including
        repair literals whose anchors were dropped) are removed, which keeps
        the result head-connected.
        """
        ground = self.engine.prepared_ground(example)
        kept = self.engine.checker.retained_generalization(clause, ground)
        generalized = HornClause(clause.head, tuple(kept))
        return generalized.prune_disconnected().prune_dangling_restrictions()

    # ------------------------------------------------------------------ #
    # the full generalisation search for one clause of the definition
    # ------------------------------------------------------------------ #
    def learn_clause(
        self,
        bottom_clause: HornClause,
        positives: Sequence[Example],
        negatives: Sequence[Example],
    ) -> LearnedClause:
        """Generalise *bottom_clause* to cover many positives and few negatives."""
        current = bottom_clause
        # The raw bottom clause is the most specific clause covering its seed
        # (Proposition 4.3): it covers one positive and no negatives.  Scoring
        # it against every training example would cost as much as a full
        # generalisation round and the clause is never kept as-is, so its
        # statistics are seeded instead of measured.
        current_stats = ClauseStats(
            positives_covered=1,
            negatives_covered=0,
            positives_total=len(positives),
            negatives_total=len(negatives),
        )

        for _ in range(self.config.max_generalization_rounds):
            covered_flags = self.engine.batch_covers(current, positives)
            uncovered = [example for example, covered in zip(positives, covered_flags) if not covered]
            pool = uncovered if uncovered else list(positives)
            seeds = self.sampler.sample(pool, self.config.generalization_sample)
            if not seeds:
                break

            best_candidate: HornClause | None = None
            best_stats: ClauseStats | None = None
            for seed in seeds:
                candidate = self.armg(current, seed)
                if len(candidate.body) == 0:
                    # Over-generalised to the trivially-true clause; skip it.
                    continue
                stats = score_clause(self.engine, candidate, positives, negatives)
                if best_stats is None or self._better(stats, best_stats):
                    best_candidate, best_stats = candidate, stats

            if best_candidate is None or best_stats is None:
                break
            if self._better(best_stats, current_stats):
                current, current_stats = best_candidate, best_stats
            else:
                break

        if self.config.reduce_clauses and current is not bottom_clause:
            reduced = self.reduce_clause(current, negatives)
            if reduced is not current:
                current = reduced
                current_stats = score_clause(self.engine, current, positives, negatives)

        return LearnedClause(current, current_stats)

    # ------------------------------------------------------------------ #
    # negative-preserving clause reduction
    # ------------------------------------------------------------------ #
    def reduce_clause(self, clause: HornClause, negatives: Sequence[Example]) -> HornClause:
        """Drop body literals whose removal does not cover additional negatives.

        Removing a literal can only make a clause more general, so positive
        coverage never shrinks; the reduction therefore only has to guard the
        negative side.  Literals are tried in reverse derivation order so the
        incidental literals gathered late in bottom-clause construction are
        discarded before the clause's core join path is ever considered.
        """
        baseline = {
            index for index, covered in enumerate(self.engine.batch_covers(clause, negatives)) if covered
        }
        head_variables = clause.head.argument_variables()
        current = clause
        for literal in reversed(clause.body):
            if literal not in current.body:
                continue  # already dropped as a side effect of an earlier removal
            if literal.argument_variables() & head_variables:
                # Literals about the target entity itself (its own genre, its
                # own title row) are the clause's backbone; negative examples
                # are often too few to witness their importance, so they are
                # never reduced away.
                continue
            candidate = current.without([literal]).prune_disconnected().prune_dangling_restrictions()
            if not candidate.body:
                continue
            covered = {
                index
                for index, flag in enumerate(self.engine.batch_covers(candidate, negatives))
                if flag
            }
            if covered <= baseline:
                current = candidate
        return current

    @staticmethod
    def _better(candidate: ClauseStats, incumbent: ClauseStats) -> bool:
        """Candidate ordering: higher score first, then higher positive coverage.

        The tie-break matters because generalising a clause often trades one
        extra covered positive for one extra covered negative (equal score);
        preferring the more general clause is what lets the covering loop make
        progress on recall, exactly as the paper's search does by always
        generalising from the selected clause.
        """
        if candidate.score != incumbent.score:
            return candidate.score > incumbent.score
        return candidate.positives_covered > incumbent.positives_covered
