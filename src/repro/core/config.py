"""Configuration of the DLearn learner.

All knobs that the paper's evaluation sweeps live here so that every
experiment (Tables 4–7, Figure 1) is a plain parameter sweep over one
dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..testing.chaos import ChaosSpec
from .supervision import DeadlinePolicy, FaultPolicy

__all__ = ["DLearnConfig"]


@dataclass(frozen=True)
class DLearnConfig:
    """Hyper-parameters of DLearn and of the Castor-style baselines.

    Attributes
    ----------
    iterations:
        ``d`` in Algorithm 2 — how many rounds of relevant-tuple expansion the
        bottom-clause construction performs (Table 7 sweeps it).
    sample_size:
        Maximum number of literals added to a bottom clause per relation and
        per iteration (Section 5; Figure 1 middle/right sweep it).  ``None``
        disables sampling.
    max_chase_frequency:
        Bottom-clause construction expands the seen-constant set ``M`` with
        the values of every gathered tuple; values occurring more often than
        this bound across the whole database (genre names, years, countries)
        are *not* used to fetch further tuples.  They still appear in the
        clause and still join literals that were reached through other
        values — the bound only stops the chase from dragging in tuples that
        merely share a popular value, which is the role mode declarations
        play in classic ILP systems.  ``None`` disables the bound.
    top_k_matches:
        ``k_m`` — how many most-similar partners the similarity index keeps
        per value (Table 4 sweeps 2/5/10).
    similarity_threshold:
        Minimum composite-similarity score for two values to be considered
        similar by the ``≈`` operator.
    generalization_sample:
        Size of the random subset ``E+_s`` of positive examples used to
        propose candidate generalisations in each generalisation step.
    max_clauses:
        Upper bound on the number of clauses in a learned definition (a
        safety valve for the covering loop, Algorithm 1).
    min_clause_positive_coverage:
        Minimum number of positive examples a candidate clause must cover to
        be added to the definition (Algorithm 1's "minimum criterion").
    min_clause_precision:
        Minimum precision (positives / (positives + negatives) covered) a
        candidate clause must reach to be added.
    max_generalization_rounds:
        Upper bound on generalisation iterations per clause (each round picks
        the best candidate among ``generalization_sample`` ARMG proposals).
    max_cfd_expansions:
        Cap on the number of CFD-repaired clause variants materialised during
        coverage testing; beyond the cap the remaining variants are ignored
        (documented approximation; the experiments stay far below it).
    max_repair_groups_per_clause:
        Cap on repair-literal groups added to a single bottom clause, keeping
        pathological clauses (thousands of violations touching one example)
        bounded.
    reduce_clauses:
        After the generalisation search selects a clause, drop every body
        literal whose removal does not let the clause cover additional
        negative examples.  Bottom clauses carry incidental literals that
        survive generalisation because they happen to be satisfiable for the
        training positives; removing them yields the concise definitions the
        paper reports and improves recall on held-out examples.  The
        ablation benchmark switches this off to measure its effect.
    compiled_subsumption:
        Run θ-subsumption checks on the compiled integer plane
        (:mod:`repro.logic.compiled`) — clauses are interned to flat int
        tuples once and the NP-hard matching loop runs on arrays with O(1)
        trail backtracking.  Off, every check runs the pure-Python reference
        checker.  As long as no check exhausts the step budget, verdicts,
        retained-literal lists and learned definitions are identical either
        way (``bench_subsumption_compiled.py`` and the property suites
        assert this) and only the cost profile differs; the exhaustion
        point of a budget-bound check is engine-relative, so workloads that
        hit the valve may drop different literals under the two engines
        (both conservatively).
    vectorized_kernels:
        Run the numpy compute plane (:mod:`repro.logic.kernels`,
        :mod:`repro.db.kernels`) on top of the compiled/interned structures:
        arc-consistency sweeps over the ``[n_slots, n_terms]`` binding matrix
        refute provably hopeless subsumption searches before the backtracking
        engine starts (the unsat certificate), and the batched chase resolves
        frontier-row unions and ``select_equal_many`` as dense passes over
        the ``array('q')`` id columns.  The certificate is sound and the
        column kernels are value-identical probe implementations, so
        verdicts, retained-literal lists, saturation results and learned
        definitions are identical with the switch on or off (the kernels
        property suite and ``benchmarks/bench_binding_matrix.py`` assert
        this) — only the cost profile differs.  The pure-Python paths remain
        the reference oracles; without numpy the switch degrades to off.
    n_jobs:
        Number of worker threads :meth:`repro.core.coverage.CoverageEngine.batch_covers`
        (and with it ``covered_counts`` and batched prediction) fans the
        per-example subsumption checks out to.  ``1`` — the default — keeps
        every check on the calling thread.  Coverage checks are independent
        per example, so the fan-out is safe (each worker gets its own
        subsumption checker); how much wall-clock it buys depends on how much
        of the subsumption work runs outside the GIL, so treat values above 1
        as an opt-in experiment rather than a guaranteed speed-up.  The
        clause-level caching of the batched path is always on and independent
        of this knob.
    parallel_backend:
        Execution backend of the ``n_jobs`` coverage fan-out:

        * ``"thread"`` (the default) — a :class:`~concurrent.futures.ThreadPoolExecutor`
          over chunked example lists.  Cheap to start and shares every cache,
          but Python-level search work contends on the GIL.
        * ``"process"`` — :mod:`repro.core.fanout`'s process pool over the
          compiled integer plane.  Workers are seeded once with a read-only
          snapshot of the session :class:`~repro.logic.compiled.TermInterner`
          and receive compiled clause forms as flat int tuples; later
          dispatches ship only interner deltas and example-id work lists, so
          coverage checks scale with cores instead of contending on the GIL.
          Verdicts are bit-identical to the serial path (the benchmark and
          property suites assert it).  Falls back to ``"thread"`` with a
          warning where worker processes cannot be spawned.
        * ``"serial"`` — force every check onto the calling thread even when
          ``n_jobs > 1``; the reference oracle for the other two.

        With ``n_jobs == 1`` the backend is irrelevant: everything runs
        serially on the calling thread.
    shard_count:
        Number of row-wise shards the database instance is partitioned into
        for the saturation chase (:mod:`repro.db.sharding`).  ``1`` — the
        default — keeps the chase on the unsharded instance.  Above 1, each
        depth of the batched chase scatters its id-frontier over the shards
        and gathers the per-shard probe answers; with
        ``parallel_backend="process"`` the shards live in seeded worker
        processes (:class:`repro.core.fanout.SaturationFanout`) so the
        per-depth index probes run GIL-free, while the serial/thread
        backends probe the same shards in-process
        (:class:`repro.core.fanout.SerialShardScatter` — the identity
        oracle).  Results are bit-identical to the unsharded chase either
        way; only the cost profile differs.  Requires interned storage;
        sessions over identity-interner instances warn and fall back to
        the unsharded chase.
    fault_policy:
        Degradation ladder of the supervised process fan-out pools
        (:mod:`repro.core.supervision`): ``"recover"`` (the default)
        respawns a crashed/hung/desynchronised worker in place, replays its
        registration log and re-dispatches only the lost chunk — demoting
        to the thread backend (coverage) or the unsharded chase
        (saturation) only when the per-pool ``max_recoveries`` budget runs
        out; ``"degrade_thread"`` / ``"degrade_serial"`` skip recovery and
        drop to the thread / serial path on the first fault; ``"raise"``
        propagates a :class:`~repro.core.supervision.FanoutFaultError`
        immediately.  Every demotion warns a structured
        :class:`~repro.core.supervision.FanoutFault` carrying the fault
        kind, pool and attempt.  Irrelevant unless
        ``parallel_backend="process"`` (or ``shard_count > 1`` under it).
    deadline_policy:
        Per-dispatch timeouts of the supervised pools: base seconds per
        chunk (scaled by ``per_item`` work units, backed off per retry).
        A chunk past its deadline marks the worker hung — it is killed and
        recovered, not waited on.  ``DeadlinePolicy(dispatch_timeout=None)``
        disables deadlines.  The default (120 s) is deliberately far above
        any healthy chunk.
    chaos:
        Deterministic fault injection (:mod:`repro.testing.chaos`): a
        :class:`~repro.testing.chaos.ChaosSpec` naming chunk ordinals at
        which a worker is killed, delayed past its deadline, shipped a
        corrupt wire, or denied an interner delta.  ``None`` — always the
        production setting — injects nothing; the chaos suite and the
        fault-tolerance benchmark set it to prove recovery yields
        bit-identical results.  (The ``REPRO_CHAOS`` environment variable
        gates the same injector operationally.)
    seed:
        Seed for every random choice (sampling of relevant tuples, of
        ``E+_s`` seeds and of training folds), making runs reproducible.
    use_mds / use_cfds:
        Feature switches used by the baselines: Castor-NoMD runs with both
        off, DLearn-Repaired runs with ``use_cfds=False`` over a repaired
        database, full DLearn runs with both on.
    exact_match_only:
        When true, MDs are honoured only for *exactly* equal values (the
        Castor-Exact baseline).
    restrict_sources:
        When set, bottom-clause construction only gathers tuples from
        relations belonging to the given sources (relations without a source
        tag are always allowed).  Used by the Castor-NoMD baseline, which —
        lacking the MDs — has no way to link the two data sources and
        therefore learns over the target's own source only.
    """

    iterations: int = 3
    sample_size: int | None = 10
    max_chase_frequency: int | None = 12
    top_k_matches: int = 5
    similarity_threshold: float = 0.65
    generalization_sample: int = 10
    max_clauses: int = 10
    min_clause_positive_coverage: int = 2
    min_clause_precision: float = 0.6
    max_generalization_rounds: int = 10
    max_cfd_expansions: int = 64
    max_repair_groups_per_clause: int = 200
    reduce_clauses: bool = True
    compiled_subsumption: bool = True
    vectorized_kernels: bool = True
    n_jobs: int = 1
    parallel_backend: str = "thread"
    shard_count: int = 1
    fault_policy: FaultPolicy = FaultPolicy()
    deadline_policy: DeadlinePolicy = DeadlinePolicy()
    chaos: ChaosSpec | None = None
    seed: int = 0
    use_mds: bool = True
    use_cfds: bool = True
    exact_match_only: bool = False
    restrict_sources: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations (d) must be >= 1")
        if self.sample_size is not None and self.sample_size < 1:
            raise ValueError("sample_size must be >= 1 or None")
        if self.top_k_matches < 1:
            raise ValueError("top_k_matches (k_m) must be >= 1")
        if not 0.0 < self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in (0, 1]")
        if self.max_clauses < 1:
            raise ValueError("max_clauses must be >= 1")
        if not 0.0 <= self.min_clause_precision <= 1.0:
            raise ValueError("min_clause_precision must be in [0, 1]")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.parallel_backend not in ("serial", "thread", "process"):
            raise ValueError("parallel_backend must be one of 'serial', 'thread', 'process'")
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not isinstance(self.fault_policy, FaultPolicy):
            raise ValueError("fault_policy must be a FaultPolicy")
        if not isinstance(self.deadline_policy, DeadlinePolicy):
            raise ValueError("deadline_policy must be a DeadlinePolicy")
        if self.chaos is not None and not isinstance(self.chaos, ChaosSpec):
            raise ValueError("chaos must be a ChaosSpec or None")

    def but(self, **changes) -> "DLearnConfig":
        """Return a copy with the given fields changed (sweep helper)."""
        return replace(self, **changes)
