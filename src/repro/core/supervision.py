"""Fault supervision for the process fan-out planes.

The fan-out pools of :mod:`repro.core.fanout` are built from pure wire
state: every worker is seeded by an executor initializer from picklable
snapshots (checker parameters, interner flag planes, shard wires) and every
later dispatch carries only deltas and handles.  That makes workers
*replayable* — a dead worker can be respawned from scratch, its
registration log re-shipped, and only the lost chunk re-dispatched, with
bit-identical results.  This module is the driver for that property:

* :class:`DeadlinePolicy` — per-dispatch timeouts with exponential backoff,
  so a hung worker is killed and recovered instead of blocking ``fit()``
  forever;
* :class:`FaultPolicy` — the degradation ladder (``recover`` →
  ``degrade_thread`` → ``degrade_serial`` → ``raise``) with a per-pool
  recovery budget, replacing the old one-shot demote-to-threads fallback;
* :class:`FanoutFault` — a :class:`RuntimeWarning` subclass carrying a
  machine-readable fault taxonomy (``crash`` / ``timeout`` / ``desync`` /
  ``seed-failure``) plus the pool name and attempt number, so callers can
  filter warnings structurally instead of string-matching;
* :class:`FaultCounters` — per-pool fault / retry / recovery counters,
  surfaced on the session next to the checker's ``SearchStats``;
* :class:`PoolSupervisor` — the dispatch loop itself: await every future
  under a deadline, classify faults, recover the owning worker through a
  pool-supplied callback, and resubmit the lost chunk; when the policy or
  the budget says stop, raise a terminal :class:`FanoutFaultError` for the
  caller's ladder.

The module is deliberately stdlib-only (no imports from the rest of
``repro``): the fan-out classes, the config and the coverage/saturation
ladders all import *it*.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = [
    "FAULT_KINDS",
    "DeadlinePolicy",
    "FanoutFault",
    "FanoutFaultError",
    "FaultCounters",
    "FaultPolicy",
    "PoolSupervisor",
    "WorkerJob",
    "classify_fault",
    "terminate_executor",
]

#: The fault taxonomy.  ``crash`` — the worker process died (kill -9, OOM,
#: segfault: surfaces as ``BrokenProcessPool``); ``timeout`` — the dispatch
#: deadline expired with the worker still running; ``desync`` — the worker
#: raised (a lost interner delta, a corrupt wire payload, a protocol bug);
#: ``seed-failure`` — a pool or respawned worker could not be constructed
#: at all.
FAULT_KINDS = ("crash", "timeout", "desync", "seed-failure")

#: Degradation-ladder rungs, most to least capable.
FAULT_MODES = ("recover", "degrade_thread", "degrade_serial", "raise")


class FanoutFault(RuntimeWarning):
    """A structured fan-out fault warning.

    Subclasses :class:`RuntimeWarning` so existing filters keep matching;
    carries the fault ``kind`` (one of :data:`FAULT_KINDS`), the ``pool``
    it happened on (``"coverage"`` / ``"saturation"``) and the ``attempt``
    ordinal, so tests and callers can filter precisely.
    """

    def __init__(self, message: str, *, kind: str = "crash", pool: str = "", attempt: int = 0) -> None:
        super().__init__(message)
        self.kind = kind
        self.pool = pool
        self.attempt = attempt


class FanoutFaultError(RuntimeError):
    """A terminal pool fault: the policy forbids (further) recovery.

    Raised by :class:`PoolSupervisor` out of a dispatch; the coverage and
    saturation callers catch it and walk their degradation ladder.  Carries
    the same taxonomy fields as :class:`FanoutFault`.
    """

    def __init__(self, message: str, *, kind: str = "crash", pool: str = "", attempt: int = 0) -> None:
        super().__init__(message)
        self.kind = kind
        self.pool = pool
        self.attempt = attempt


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-dispatch deadlines: budget-scaled, exponential backoff, bounded retries.

    Attributes
    ----------
    dispatch_timeout:
        Base seconds one dispatched chunk may take before its worker is
        declared hung, killed, and recovered.  ``None`` disables deadlines
        (waits become unbounded — every ``future.result`` still passes the
        explicit ``timeout=None``).  The default is deliberately generous:
        a healthy chunk on a loaded CI runner must never trip it.
    per_item:
        Extra seconds of budget per work unit in the chunk, so deadlines
        scale with dispatch size instead of punishing big batches.
    backoff:
        Multiplier applied to the timeout per retry attempt — a recovered
        worker re-proving the lost chunk gets more headroom, which keeps a
        tight first deadline from looping on a genuinely slow chunk.
    max_retries:
        Recovery-and-resubmit attempts per chunk before the fault is
        terminal.
    """

    dispatch_timeout: float | None = 120.0
    per_item: float = 0.0
    backoff: float = 2.0
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.dispatch_timeout is not None and self.dispatch_timeout <= 0:
            raise ValueError("dispatch_timeout must be positive or None")
        if self.per_item < 0:
            raise ValueError("per_item must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def timeout_for(self, attempt: int, work_units: int = 1) -> float | None:
        """The deadline of one chunk await: base + per-unit scale, backed off per attempt."""
        if self.dispatch_timeout is None:
            return None
        base = self.dispatch_timeout + self.per_item * max(0, work_units)
        return base * self.backoff**attempt


@dataclass(frozen=True)
class FaultPolicy:
    """The degradation ladder and the per-pool fault budget.

    ``mode`` picks the top rung: ``"recover"`` (the default) respawns and
    replays faulted workers in place, demoting only when the budget runs
    out; ``"degrade_thread"`` / ``"degrade_serial"`` skip recovery and drop
    straight to the thread / serial backend on the first fault;
    ``"raise"`` propagates a :class:`FanoutFaultError` immediately — no
    recovery, no fallback — for callers that must not mask faults.
    ``max_recoveries`` bounds respawn-and-replay cycles over the pool's
    lifetime, so a persistently faulting environment degrades instead of
    thrashing.
    """

    mode: str = "recover"
    max_recoveries: int = 8

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {', '.join(FAULT_MODES)}")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")

    @property
    def recovers(self) -> bool:
        return self.mode == "recover"


class FaultCounters:
    """Per-pool observability: how often what failed, and what it cost.

    Exposed as ``<fanout>.supervisor.counters`` and aggregated by
    :meth:`repro.core.session.LearningSession.fault_stats` next to the
    checker's ``SearchStats`` — a session that recovered from faults says
    so, in numbers.
    """

    __slots__ = ("faults", "retries", "recoveries", "demotions", "recovery_seconds")

    def __init__(self) -> None:
        self.faults: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.retries = 0
        self.recoveries = 0
        self.demotions = 0
        self.recovery_seconds = 0.0

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    def record_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "faults": dict(self.faults),
            "total_faults": self.total_faults,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "demotions": self.demotions,
            "recovery_seconds": self.recovery_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultCounters({self.as_dict()!r})"


@dataclass(frozen=True)
class WorkerJob:
    """One supervised chunk.

    ``payload`` is what the first attempt ships (it may carry a one-shot
    chaos directive); ``retry_payload`` is the clean payload a *recovered*
    worker gets — after respawn-and-replay the worker holds every
    registration and the full interner snapshot, so the retry carries no
    delta and no bundles, only the work list.  ``units`` scales the
    deadline.
    """

    worker: int
    payload: tuple
    retry_payload: tuple
    units: int = 1


def classify_fault(error: BaseException) -> str:
    """Map an await-side exception onto the fault taxonomy."""
    if isinstance(error, BrokenProcessPool):
        return "crash"
    if isinstance(error, (FutureTimeout, TimeoutError)):
        return "timeout"
    return "desync"


def terminate_executor(executor: Any) -> None:
    """Hard-stop a (possibly hung or broken) single-worker executor.

    ``shutdown(wait=False)`` alone leaves a hung worker running — and a
    non-daemon worker process blocks interpreter exit — so the worker
    processes are killed first, best-effort through the executor's process
    map.  Safe on executors that are already broken or never spawned.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except (OSError, RuntimeError):  # pragma: no cover - broken executor
        pass


class PoolSupervisor:
    """Deadline / retry / recovery driver around one fan-out pool's dispatches.

    Owns no processes itself.  The pool supplies two callbacks per run:
    ``submit(worker, payload) -> Future`` and ``recover(worker) -> None``
    (kill, respawn, replay the registration log).  The supervisor submits
    every job, awaits each under the :class:`DeadlinePolicy`, and on a
    fault warns a :class:`FanoutFault`, recovers the worker, and resubmits
    the job's clean retry payload with a backed-off deadline — until the
    :class:`FaultPolicy` budget or the retry bound says the fault is
    terminal, at which point a :class:`FanoutFaultError` propagates to the
    caller's degradation ladder.  Healthy dispatches are warning-free and
    touch nothing but the timeout argument.
    """

    def __init__(
        self,
        pool_name: str,
        *,
        fault_policy: FaultPolicy | None = None,
        deadline_policy: DeadlinePolicy | None = None,
    ) -> None:
        self.pool_name = pool_name
        self.fault_policy = fault_policy or FaultPolicy()
        self.deadline_policy = deadline_policy or DeadlinePolicy()
        self.counters = FaultCounters()

    # ------------------------------------------------------------------ #
    def run(
        self,
        jobs: Sequence[WorkerJob],
        submit: Callable[[int, tuple], Future],
        recover: Callable[[int], None],
    ) -> list[Any]:
        """Dispatch every job and gather results, recovering faulted workers.

        Results come back in job order.  All first attempts are submitted
        up front (workers run concurrently); awaiting is sequential, which
        is exact for single-worker FIFO executors — a chunk that finishes
        early stays finished while a slower sibling is awaited.
        """
        futures = [self._submit_guarded(submit, job.worker, job.payload) for job in jobs]
        return [
            self._await(job, future, submit, recover) for job, future in zip(jobs, futures)
        ]

    # ------------------------------------------------------------------ #
    def _submit_guarded(
        self, submit: Callable[[int, tuple], Future], worker: int, payload: tuple
    ) -> Future:
        """Submit, folding synchronous submit failures into the await path."""
        try:
            return submit(worker, payload)
        except Exception as error:  # broken pool at submit time
            failed: Future = Future()
            failed.set_exception(error)
            return failed

    def _await(
        self,
        job: WorkerJob,
        future: Future,
        submit: Callable[[int, tuple], Future],
        recover: Callable[[int], None],
    ) -> Any:
        attempt = 0
        while True:
            timeout = self.deadline_policy.timeout_for(attempt, job.units)
            try:
                return future.result(timeout=timeout)
            except Exception as error:
                kind = classify_fault(error)
                self.counters.record_fault(kind)
                attempt += 1
                if (
                    not self.fault_policy.recovers
                    or attempt > self.deadline_policy.max_retries
                    or self.counters.recoveries >= self.fault_policy.max_recoveries
                ):
                    raise FanoutFaultError(
                        f"{self.pool_name} fan-out fault ({kind}) on worker {job.worker} "
                        f"is terminal under FaultPolicy(mode={self.fault_policy.mode!r}, "
                        f"max_recoveries={self.fault_policy.max_recoveries}) "
                        f"after attempt {attempt}: {error!r}",
                        kind=kind,
                        pool=self.pool_name,
                        attempt=attempt,
                    ) from error
                warnings.warn(
                    FanoutFault(
                        f"{self.pool_name} fan-out worker {job.worker} faulted "
                        f"({kind}: {error!r}); respawning and replaying its "
                        f"registration log (attempt {attempt})",
                        kind=kind,
                        pool=self.pool_name,
                        attempt=attempt,
                    ),
                    stacklevel=5,
                )
                started = time.perf_counter()
                try:
                    recover(job.worker)
                except Exception as seed_error:
                    self.counters.record_fault("seed-failure")
                    raise FanoutFaultError(
                        f"{self.pool_name} fan-out could not respawn worker "
                        f"{job.worker} after a {kind} fault: {seed_error!r}",
                        kind="seed-failure",
                        pool=self.pool_name,
                        attempt=attempt,
                    ) from seed_error
                self.counters.recoveries += 1
                self.counters.recovery_seconds += time.perf_counter() - started
                self.counters.retries += 1
                future = self._submit_guarded(submit, job.worker, job.retry_payload)
