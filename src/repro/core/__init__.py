"""DLearn core: the paper's primary contribution.

Bottom-clause construction over dirty data, repair-literal machinery,
generalisation, coverage testing, and the covering-loop learner.
"""

from .bottom_clause import BottomClauseBuilder, RelevantTuples, SimilarityEvidence
from .config import DLearnConfig
from .coverage import CoverageEngine
from .dlearn import DLearn, LearnedModel
from .generalization import Generalizer, LearnedClause
from .problem import Example, ExampleSet, LearningProblem
from .repair_literals import (
    cfd_lhs_repair_literals,
    cfd_rhs_repair_literals,
    evaluate_condition,
    md_repair_literals,
    repair_groups,
    repaired_clauses,
    strip_repair_machinery,
)
from .scoring import ClauseStats, score_clause

__all__ = [
    "BottomClauseBuilder",
    "ClauseStats",
    "CoverageEngine",
    "DLearn",
    "DLearnConfig",
    "Example",
    "ExampleSet",
    "Generalizer",
    "LearnedClause",
    "LearnedModel",
    "LearningProblem",
    "RelevantTuples",
    "SimilarityEvidence",
    "cfd_lhs_repair_literals",
    "cfd_rhs_repair_literals",
    "evaluate_condition",
    "md_repair_literals",
    "repair_groups",
    "repaired_clauses",
    "score_clause",
    "strip_repair_machinery",
]
