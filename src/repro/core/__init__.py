"""DLearn core: the paper's primary contribution.

Bottom-clause construction over dirty data, repair-literal machinery,
generalisation, coverage testing, and the covering-loop learner.
"""

from .bottom_clause import BottomClauseBuilder, ClauseAssembler, RelevantTuples, SimilarityEvidence
from .config import DLearnConfig
from .coverage import CoverageEngine
from .dlearn import DLearn, LearnedModel
from .generalization import Generalizer, LearnedClause
from .problem import Example, ExampleSet, LearningProblem
from .saturation import DatabaseProbeCache, FrontierChase, SaturationCache
from .session import DatabasePreparation, LearningSession
from .supervision import (
    DeadlinePolicy,
    FanoutFault,
    FanoutFaultError,
    FaultCounters,
    FaultPolicy,
)
from .repair_literals import (
    cfd_lhs_repair_literals,
    cfd_rhs_repair_literals,
    evaluate_condition,
    md_repair_literals,
    repair_groups,
    repaired_clauses,
    strip_repair_machinery,
)
from .scoring import ClauseStats, score_clause

__all__ = [
    "BottomClauseBuilder",
    "ClauseAssembler",
    "ClauseStats",
    "CoverageEngine",
    "DLearn",
    "DLearnConfig",
    "DatabasePreparation",
    "DatabaseProbeCache",
    "DeadlinePolicy",
    "Example",
    "ExampleSet",
    "FanoutFault",
    "FanoutFaultError",
    "FaultCounters",
    "FaultPolicy",
    "FrontierChase",
    "Generalizer",
    "LearnedClause",
    "LearnedModel",
    "LearningProblem",
    "LearningSession",
    "RelevantTuples",
    "SaturationCache",
    "SimilarityEvidence",
    "cfd_lhs_repair_literals",
    "cfd_rhs_repair_literals",
    "evaluate_condition",
    "md_repair_literals",
    "repair_groups",
    "repaired_clauses",
    "score_clause",
    "strip_repair_machinery",
]
