"""Clause scoring.

DLearn scores a candidate clause by the number of positive examples it covers
minus the number of negative examples it covers (Section 3.3 / 4.2); the
covering loop additionally applies a minimum criterion before accepting a
clause (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..logic.clauses import HornClause
from .config import DLearnConfig
from .coverage import CoverageEngine
from .problem import Example

__all__ = ["ClauseStats", "score_clause"]


@dataclass(frozen=True)
class ClauseStats:
    """Coverage statistics of one clause over a training set."""

    positives_covered: int
    negatives_covered: int
    positives_total: int
    negatives_total: int

    @property
    def score(self) -> float:
        """The paper's clause score: positives covered minus negatives covered."""
        return self.positives_covered - self.negatives_covered

    @property
    def precision(self) -> float:
        covered = self.positives_covered + self.negatives_covered
        return self.positives_covered / covered if covered else 0.0

    @property
    def recall(self) -> float:
        return self.positives_covered / self.positives_total if self.positives_total else 0.0

    def satisfies_criterion(self, config: DLearnConfig) -> bool:
        """Algorithm 1's minimum criterion for accepting a clause."""
        return (
            self.positives_covered >= config.min_clause_positive_coverage
            and self.precision >= config.min_clause_precision
        )

    def __str__(self) -> str:
        return (
            f"pos={self.positives_covered}/{self.positives_total} "
            f"neg={self.negatives_covered}/{self.negatives_total} "
            f"score={self.score:.1f} precision={self.precision:.2f}"
        )


def score_clause(
    engine: CoverageEngine,
    clause: HornClause,
    positives: Sequence[Example],
    negatives: Sequence[Example],
) -> ClauseStats:
    """Compute the coverage statistics of *clause* over the given examples.

    Goes through :meth:`CoverageEngine.covered_counts`, i.e. one batched
    evaluation that prepares the clause once for all examples.
    """
    positives_covered, negatives_covered = engine.covered_counts(clause, positives, negatives)
    return ClauseStats(
        positives_covered=positives_covered,
        negatives_covered=negatives_covered,
        positives_total=len(positives),
        negatives_total=len(negatives),
    )
