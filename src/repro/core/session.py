"""Shared learning sessions: prepared state computed once, reused everywhere.

Learning, prediction, cross-validation and scenario grids all need the same
expensive preparation — similarity indexes per MD (Section 5's "precompute
the pairs of similar values"), saturated relevant-tuple sets, prepared ground
bottom clauses, memoised index probes.  Before this module each consumer
rebuilt that state from scratch; a :class:`LearningSession` now owns it, and
a :class:`DatabasePreparation` holds the example-set-independent part so that
sessions over the same database instance (cross-validation folds, train vs
test, the cells of a scenario sweep) share it.

Two levels of sharing:

``DatabasePreparation`` — keyed to one database instance.  Holds the
:class:`~repro.core.saturation.DatabaseProbeCache` (pure index probes) and,
per matching dependency, the similarity *scoring* state: the q-gram blocker
over the MD's database column and a cache of every scored candidate pair.
Because top-``k_m`` trimming commutes with taking subsets (the top ``k`` of
``top_k(A) ∪ B`` equals the top ``k`` of ``A ∪ B``), per-example-set indexes
assembled from cached scores are *identical* to freshly built ones — reuse is
exact, not approximate.  Unseen values (e.g. a new test fold's titles) are
scored incrementally on first sight instead of triggering a full rebuild.

``LearningSession`` — keyed to one (problem, config) pair.  Owns the
similarity indexes for the problem's example set, the batched
:class:`~repro.core.saturation.FrontierChase` with its saturation cache, the
bottom-clause builder, the coverage engine and the generalizer.
``evaluation_session`` derives (and memoises) sessions for fresh example sets
— prediction calls, test folds — that share the preparation, so consecutive
predictions never rebuild indexes and never re-probe the database.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from ..constraints.mds import MatchingDependency
from ..db.instance import DatabaseInstance
from ..db.sampling import Sampler
from ..db.schema import RelationSchema
from ..db.sharding import ShardedInstance
from ..logic.compiled import ClauseCompiler
from ..logic.subsumption import SubsumptionChecker
from ..similarity.composite import SimilarityOperator
from ..similarity.index import SimilarityIndex, SimilarityMatch
from ..similarity.qgrams import QGramBlocker
from ..testing.chaos import ChaosInjector, ChaosSpec
from .bottom_clause import BottomClauseBuilder, ClauseAssembler
from .config import DLearnConfig
from .coverage import CoverageEngine
from .fanout import ProcessFanout, SaturationFanout, SerialShardScatter, checker_params
from .generalization import Generalizer
from .problem import Example, ExampleSet, LearningProblem
from .saturation import DatabaseProbeCache, FrontierChase, SaturationCache
from .supervision import DeadlinePolicy, FaultPolicy

__all__ = ["DatabasePreparation", "LearningSession"]

#: Bound on memoised evaluation sessions per learning session.  Each entry
#: holds a full coverage engine with its prepared ground clauses, so a
#: long-lived model serving ever-changing prediction batches must not grow
#: one per batch; eviction is LRU, so the repeated example sets reuse targets
#: (folds, repeated scoring of one test set) stay hot.
_MAX_EVALUATION_SESSIONS = 8


class _MdIndexCache:
    """Cached similarity-index construction for one matching dependency.

    The expensive part of building a :class:`SimilarityIndex` is scoring the
    blocked candidate pairs.  For an MD between two *database* columns the
    whole index is example-set-independent and is built once per
    ``(top_k, threshold)``.  For an MD whose one side is the target relation
    (matching example values against a database column — the common case for
    the paper's datasets) the database column, its blocker, and every scored
    pair are kept here; per-example-set indexes are assembled from the score
    cache, with only never-seen example values scored incrementally.
    """

    def __init__(
        self,
        md: MatchingDependency,
        database: DatabaseInstance,
        target: RelationSchema,
        measure,
        blocker_q: int = 3,
        min_shared_grams: int = 2,
    ) -> None:
        self.md = md
        self.database = database
        self.target = target
        self.measure = measure
        self.blocker_q = blocker_q
        self.min_shared_grams = min_shared_grams
        first = md.premises[0]
        self._left = (md.left_relation, first.left_attribute)
        self._right = (md.right_relation, first.right_attribute)
        self._left_is_target = md.left_relation == target.name
        self._right_is_target = md.right_relation == target.name
        self._blocker: QGramBlocker | None = None
        self._fixed_distinct: set[object] | None = None
        #: varying value *id* → every blocked candidate pair, scored, oriented
        #: left→right.  Keyed through the database's interner so repeated
        #: index assemblies (folds, prediction batches) probe the score cache
        #: with integer ids instead of re-hashing the example strings.
        self._interner = database.interner
        self._scored: dict[object, tuple[SimilarityMatch, ...]] = {}
        #: (top_k, threshold) → index, for MDs not involving the target.
        self._static: dict[tuple[int, float], SimilarityIndex] = {}
        #: full-build cache for the (rare) target-to-target MDs.
        self._full: dict[tuple[frozenset, frozenset, int, float], SimilarityIndex] = {}

    # ------------------------------------------------------------------ #
    def index_for(self, examples: Sequence[Example], top_k: int, threshold: float) -> SimilarityIndex:
        operator = SimilarityOperator(measure=self.measure, threshold=threshold)
        if not (self._left_is_target or self._right_is_target):
            key = (top_k, threshold)
            if key not in self._static:
                index = SimilarityIndex(operator=operator, top_k=top_k)
                index.build(self._column(self._left, examples), self._column(self._right, examples))
                self._static[key] = index
            return self._static[key]
        if self._left_is_target and self._right_is_target:
            # Keyed on each column's value set separately: equal unions with
            # different left/right assignments must not share an index.
            key = (
                frozenset(self._column(self._left, examples)),
                frozenset(self._column(self._right, examples)),
                top_k,
                threshold,
            )
            if key not in self._full:
                index = SimilarityIndex(operator=operator, top_k=top_k)
                index.build(self._column(self._left, examples), self._column(self._right, examples))
                self._full[key] = index
            return self._full[key]
        varying_side = self._left if self._left_is_target else self._right
        varying = {value for value in self._column(varying_side, examples) if value is not None}
        matches: list[SimilarityMatch] = []
        # Sorted so the match order (and therefore top-k tie-breaking inside
        # the assembled index) is independent of set hash order.
        for value in sorted(varying, key=repr):
            matches.extend(self._scored_pairs(value))
        return SimilarityIndex.from_scored_matches(
            matches,
            operator=operator,
            top_k=top_k,
            blocker_q=self.blocker_q,
            min_shared_grams=self.min_shared_grams,
        )

    # ------------------------------------------------------------------ #
    def _column(self, column: tuple[str, str], examples: Sequence[Example]) -> list[object]:
        relation_name, attribute_name = column
        if relation_name == self.target.name:
            position = self.target.position_of(attribute_name)
            return [example.values[position] for example in examples]
        # Sorted: distinct_values is a set, and column order decides top-k
        # tie-breaking in the indexes built from it.
        return sorted(self.database.relation(relation_name).distinct_values(attribute_name), key=repr)

    def _fixed_column(self) -> set[object]:
        if self._fixed_distinct is None:
            fixed_side = self._right if self._left_is_target else self._left
            relation_name, attribute_name = fixed_side
            self._fixed_distinct = {
                value
                for value in self.database.relation(relation_name).distinct_values(attribute_name)
                if value is not None
            }
        return self._fixed_distinct

    def _blocker_over_fixed(self) -> QGramBlocker:
        if self._blocker is None:
            self._blocker = QGramBlocker(q=self.blocker_q, min_shared=self.min_shared_grams)
            self._blocker.add_all(self._fixed_column())
        return self._blocker

    def _scored_pairs(self, value: object) -> tuple[SimilarityMatch, ...]:
        """All blocked candidate pairs of one varying value, scored once and cached.

        Q-gram candidacy is symmetric (the pair shares ``min_shared`` grams no
        matter which side is indexed), so blocking the fixed database column
        and querying the varying value yields exactly the pairs a fresh
        ``build`` would score; orientation of the stored match (and of the
        measure call) follows the MD's left→right declaration.
        """
        key = self._interner.intern(value)
        cached = self._scored.get(key)
        if cached is None:
            blocker = self._blocker_over_fixed()
            pairs = []
            for candidate in blocker.candidates(value):
                if self._left_is_target:
                    left, right = value, candidate
                else:
                    left, right = candidate, value
                score = 1.0 if left == right else self.measure.similarity(left, right)
                pairs.append(SimilarityMatch(left, right, score))
            cached = tuple(pairs)
            self._scored[key] = cached
        return cached


class DatabasePreparation:
    """Example-set-independent prepared state for one database instance.

    Built once per database and shared by every :class:`LearningSession` over
    it — the covering loop, the prediction path, every cross-validation fold,
    every cell of a scenario grid that evaluates the same instance.  Carries
    the memoised pure index probes and the per-MD similarity scoring caches.

    The preparation assumes a consistent similarity operator across its
    sessions (they all come from the same :class:`LearningProblem` family);
    sessions over a *different* database instance must build their own
    preparation — :class:`LearningSession` enforces this.
    """

    def __init__(
        self,
        database: DatabaseInstance,
        target: RelationSchema,
        operator: SimilarityOperator | None = None,
    ) -> None:
        self.database = database
        self.target = target
        self.operator = operator or SimilarityOperator()
        self.probes = DatabaseProbeCache(database)
        #: Shared θ-subsumption clause compiler: term ids are only meaningful
        #: relative to one interner, so every session over this database (the
        #: covering loop, prediction batches, cross-validation folds) compiles
        #: its clauses through the same dictionary and compiled clause forms
        #: stay valid across sessions.  The numpy binding-matrix planes of
        #: the vectorised kernels cache on those compiled forms
        #: (:func:`repro.logic.kernels.specific_plane`), so they are shared
        #: through the preparation as well.
        self.compiler = ClauseCompiler()
        self._md_caches: dict[str, _MdIndexCache] = {}
        self._fanouts: dict[tuple, ProcessFanout] = {}
        self._sharded: dict[int, ShardedInstance] = {}
        self._scatters: dict[tuple, SaturationFanout | SerialShardScatter] = {}

    @classmethod
    def from_problem(cls, problem: LearningProblem) -> "DatabasePreparation":
        return cls(problem.database, problem.target, problem.similarity_operator)

    # ------------------------------------------------------------------ #
    def process_fanout(
        self,
        checker: SubsumptionChecker,
        n_jobs: int,
        *,
        fault_policy: FaultPolicy | None = None,
        deadline_policy: DeadlinePolicy | None = None,
        chaos: ChaosSpec | None = None,
    ) -> ProcessFanout:
        """The shared process fan-out pool for sessions over this database.

        Memoised per (worker count, checker parameters, supervision
        policies): every session over one preparation compiles through the
        same :class:`~repro.logic.compiled.ClauseCompiler`, so their
        compiled forms reference one interner and can share one seeded
        worker pool — folds and prediction sessions reuse already-shipped
        clause forms instead of re-seeding processes per session.  Worker
        processes spawn lazily on first dispatch, so an unused pool costs
        nothing.  A demoted (closed) pool is rebuilt on the next request,
        with a fresh chaos injector when a spec is given.
        """
        params = checker_params(checker)
        key = (
            n_jobs,
            tuple(sorted(params.items(), key=lambda item: item[0])),
            fault_policy,
            deadline_policy,
            chaos,
        )
        fanout = self._fanouts.get(key)
        if fanout is None or fanout._closed:
            fanout = ProcessFanout(
                self.compiler.terms,
                params,
                n_jobs,
                fault_policy=fault_policy,
                deadline_policy=deadline_policy,
                chaos=ChaosInjector(chaos) if chaos is not None else None,
            )
            self._fanouts[key] = fanout
        return fanout

    def sharded_instance(self, shard_count: int) -> ShardedInstance:
        """Memoised row-wise sharded projection of this database.

        One sharded projection per shard count serves every session over the
        preparation — the shards are kept current against in-place mutations
        by the scatter planes' per-depth :meth:`~repro.db.sharding.ShardedInstance.sync`
        (a cheap stamp comparison when nothing changed).  Raises
        ``ValueError`` for identity-interner storage, which cannot be
        sharded (rows route by value id).
        """
        sharded = self._sharded.get(shard_count)
        if sharded is None:
            sharded = ShardedInstance(self.database, shard_count)
            self._sharded[shard_count] = sharded
        return sharded

    def shard_scatter(
        self,
        shard_count: int,
        backend: str,
        *,
        fault_policy: FaultPolicy | None = None,
        deadline_policy: DeadlinePolicy | None = None,
        chaos: ChaosSpec | None = None,
    ) -> SaturationFanout | SerialShardScatter:
        """The shared per-depth scatter plane over ``shard_count`` shards.

        ``backend == "process"`` builds (and memoises) a
        :class:`~repro.core.fanout.SaturationFanout` — seeded shard worker
        processes answering each depth's probes GIL-free; any other backend
        gets the in-process :class:`~repro.core.fanout.SerialShardScatter`
        over the same shards.  Memoised per (shard count, plane, supervision
        policies) so folds and prediction sessions share one seeded pool,
        mirroring :meth:`process_fanout`; demoted (closed) planes are
        rebuilt on the next request.
        """
        kind = "process" if backend == "process" else "serial"
        key = (shard_count, kind, fault_policy, deadline_policy, chaos)
        scatter = self._scatters.get(key)
        if scatter is None or scatter._closed:
            sharded = self.sharded_instance(shard_count)
            scatter = (
                SaturationFanout(
                    sharded,
                    fault_policy=fault_policy,
                    deadline_policy=deadline_policy,
                    chaos=ChaosInjector(chaos) if chaos is not None else None,
                )
                if kind == "process"
                else SerialShardScatter(sharded)
            )
            self._scatters[key] = scatter
        return scatter

    def close(self) -> None:
        """Shut down every worker pool (coverage and shard scatter) this preparation owns."""
        for fanout in self._fanouts.values():
            fanout.close()
        self._fanouts.clear()
        for scatter in self._scatters.values():
            scatter.close()
        self._scatters.clear()

    # ------------------------------------------------------------------ #
    def similarity_indexes_for(
        self,
        mds: Iterable[MatchingDependency],
        examples: Sequence[Example] | ExampleSet,
        *,
        top_k: int,
        threshold: float,
    ) -> dict[str, SimilarityIndex]:
        """One top-``k_m`` index per MD, identical to a fresh build.

        Equivalent to
        :meth:`repro.core.problem.LearningProblem.build_similarity_indexes`
        but served from the per-MD scoring caches: only example values never
        seen before are scored, everything else is assembled from cache.
        """
        if isinstance(examples, ExampleSet):
            examples = examples.all()
        indexes: dict[str, SimilarityIndex] = {}
        for md in mds:
            cache = self._md_caches.get(md.name)
            if cache is None or cache.md != md:
                # Guard against a *different* MD reusing a cached name (e.g. a
                # problem whose constraints were swapped via with_constraints):
                # scored pairs are only valid for the MD they were scored for.
                cache = _MdIndexCache(md, self.database, self.target, self.operator.measure)
                self._md_caches[md.name] = cache
            indexes[md.name] = cache.index_for(examples, top_k, threshold)
        return indexes


class LearningSession:
    """All prepared state for learning and evaluating one (problem, config) pair.

    Owns the similarity indexes, the batched frontier chase with its
    saturation cache, the bottom-clause builder, the coverage engine and the
    generalizer; the covering loop, prediction, and the evaluation harness
    all drive the *same* objects instead of rebuilding them per call.

    Parameters
    ----------
    problem / config:
        The learning task and hyper-parameters the session serves.
    preparation:
        Shared :class:`DatabasePreparation`.  Must belong to the problem's
        database instance; omitted, a private one is created.  Pass one
        preparation to many sessions (folds, prediction) to share similarity
        scoring and database probes.
    serial_saturation:
        Route relevant-tuple gathering through the uncached per-example
        reference path instead of the batched chase.  Results are identical;
        only the cost profile differs.  Used by equivalence tests and
        ``benchmarks/bench_saturation_batch.py``.
    """

    def __init__(
        self,
        problem: LearningProblem,
        config: DLearnConfig,
        *,
        preparation: DatabasePreparation | None = None,
        serial_saturation: bool = False,
    ) -> None:
        if preparation is not None and preparation.database is not problem.database:
            raise ValueError(
                "the supplied DatabasePreparation belongs to a different database instance; "
                "build one per database (repaired/cleaned instances need their own)"
            )
        self.problem = problem
        self.config = config
        self.preparation = preparation or DatabasePreparation.from_problem(problem)
        self.similarity_indexes: dict[str, SimilarityIndex] = (
            self.preparation.similarity_indexes_for(
                problem.mds,
                problem.examples,
                top_k=config.top_k_matches,
                threshold=config.similarity_threshold,
            )
            if config.use_mds
            else {}
        )
        self.chase = FrontierChase(
            problem,
            config,
            self.similarity_indexes,
            probes=self.preparation.probes,
            cache=SaturationCache(),
            batched=not serial_saturation,
        )
        self.assembler = ClauseAssembler(problem, config, self.chase)
        self.builder = BottomClauseBuilder(
            problem, config, self.similarity_indexes, chase=self.chase, assembler=self.assembler
        )
        self.engine = CoverageEngine(
            self.builder,
            config,
            SubsumptionChecker(
                compiler=self.preparation.compiler,
                vectorized_kernels=config.vectorized_kernels,
            ),
        )
        if config.parallel_backend == "process" and config.n_jobs > 1:
            # Share one seeded worker pool across every session over this
            # preparation (folds, prediction); pool creation is lazy-spawning
            # and cheap.  Where worker processes cannot be created at all the
            # engine falls back to the thread backend on first dispatch.
            try:
                self.engine.attach_fanout(
                    self.preparation.process_fanout(
                        self.engine.checker,
                        config.n_jobs,
                        fault_policy=config.fault_policy,
                        deadline_policy=config.deadline_policy,
                        chaos=config.chaos,
                    )
                )
            except (OSError, PermissionError, ValueError):
                pass  # the engine's own _ensure_fanout will warn and fall back
        if config.shard_count > 1 and not serial_saturation:
            # Scatter each chase depth over row-wise shards: worker processes
            # under the process backend, the in-process shard plane otherwise.
            # Structural refusals — identity-interner storage, no process
            # spawning — fall back to the (always-correct) unsharded chase.
            try:
                self.chase.attach_shard_scatter(
                    self.preparation.shard_scatter(
                        config.shard_count,
                        config.parallel_backend,
                        fault_policy=config.fault_policy,
                        deadline_policy=config.deadline_policy,
                        chaos=config.chaos,
                    )
                )
            except (OSError, PermissionError, ValueError) as error:
                warnings.warn(
                    f"sharded chase unavailable ({error}); using the unsharded chase",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self.generalizer = Generalizer(self.engine, config, Sampler(config.seed))
        self._serial_saturation = serial_saturation
        self._evaluation_sessions: dict[frozenset, "LearningSession"] = {}

    # ------------------------------------------------------------------ #
    # derived sessions
    # ------------------------------------------------------------------ #
    def for_examples(self, examples: ExampleSet) -> "LearningSession":
        """A session over the same database and config for a different example set.

        Shares this session's :class:`DatabasePreparation`, so similarity
        scoring and database probes are reused; the saturation cache is fresh
        (relevant tuples depend on the example set's similarity indexes).
        """
        return LearningSession(
            self.problem.with_examples(examples),
            self.config,
            preparation=self.preparation,
            serial_saturation=self._serial_saturation,
        )

    def evaluation_session(self, examples: Sequence[Example]) -> "LearningSession":
        """The (memoised) session classifying *examples* — the prediction path.

        Keyed on the set of example values: similarity indexes and ground
        bottom clauses depend on the values alone, not on labels or order, so
        repeated predictions over the same tuples reuse one session — and
        with it every prepared index, probe, chase result and ground clause.
        The memo is bounded: beyond ``_MAX_EVALUATION_SESSIONS`` the least
        recently used entry is evicted (hits are refreshed, so repeatedly
        scored example sets stay memoised); the shared preparation keeps even
        an evicted set's similarity scoring and database probes warm.
        """
        key = frozenset(example.values for example in examples)
        session = self._evaluation_sessions.pop(key, None)
        if session is None:
            example_set = ExampleSet(
                positives=[example for example in examples if example.positive],
                negatives=[example for example in examples if example.negative],
            )
            session = self.for_examples(example_set)
            if len(self._evaluation_sessions) >= _MAX_EVALUATION_SESSIONS:
                self._evaluation_sessions.pop(next(iter(self._evaluation_sessions)))
        self._evaluation_sessions[key] = session  # (re-)insert at the LRU tail
        return session

    # ------------------------------------------------------------------ #
    # warm-up
    # ------------------------------------------------------------------ #
    def warm_saturation(self, examples: Sequence[Example]) -> None:
        """Saturate *examples* in one batched chase (drop-in for lazy warm-up)."""
        self.chase.relevant_many(examples)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def fault_stats(self) -> dict[str, dict[str, object] | None]:
        """Fault/retry/recovery counters of the session's supervised pools.

        One entry per pool plane — ``"coverage"`` (the coverage engine's
        process fan-out) and ``"saturation"`` (the chase's shard scatter) —
        each a plain-dict snapshot of
        :class:`~repro.core.supervision.FaultCounters` (``faults`` by kind,
        ``retries``, ``recoveries``, ``demotions``, ``recovery_seconds``),
        or ``None`` where no supervised pool was ever attached.  Counters
        survive demotion, so a session that fell back mid-``fit`` still
        reports what its pool went through.
        """
        coverage = self.engine.fault_counters
        saturation = self.chase.fault_counters
        return {
            "coverage": coverage.as_dict() if coverage is not None else None,
            "saturation": saturation.as_dict() if saturation is not None else None,
        }
