"""CI guard against silent test-collection breakage.

An import error in a test module, a renamed directory, or a bad conftest can
make pytest silently collect a fraction of the suite while everything that
*is* collected stays green.  This script collects the suite and fails when
fewer tests are found than the recorded floor.

Raise MIN_TEST_COUNT whenever a PR adds tests (set it to the new collected
count); never lower it without removing tests on purpose.

Run with:  PYTHONPATH=src python tools/check_test_count.py
"""

from __future__ import annotations

import sys

import pytest

#: Collected-test floor; the suite held 712 tests when this was last raised.
MIN_TEST_COUNT = 712


class _CollectionCounter:
    def __init__(self) -> None:
        self.count = 0

    def pytest_collection_finish(self, session) -> None:
        self.count = len(session.items)


def main() -> int:
    counter = _CollectionCounter()
    exit_code = pytest.main(["--collect-only", "-q", "--no-header", "-p", "no:cacheprovider"], plugins=[counter])
    if exit_code not in (0, pytest.ExitCode.NO_TESTS_COLLECTED):
        print(f"collection itself failed with exit code {exit_code}", file=sys.stderr)
        return int(exit_code)
    if counter.count < MIN_TEST_COUNT:
        print(
            f"FAIL: collected {counter.count} tests, below the recorded floor of {MIN_TEST_COUNT}. "
            "If tests were removed on purpose, lower MIN_TEST_COUNT in tools/check_test_count.py; "
            "otherwise a conftest/import problem is silently dropping tests.",
            file=sys.stderr,
        )
        return 1
    print(f"OK: collected {counter.count} tests (floor {MIN_TEST_COUNT})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
