"""Repo tooling namespace (``python -m tools.arch_lint`` lives here)."""
