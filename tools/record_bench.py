"""Record the per-PR benchmark trajectory as in-repo BENCH files.

The CI smoke runs emit ``BENCH_*.json`` records but only keep them as build
artifacts, so the repository itself carries no perf trajectory — a PR that
slows a benchmark down leaves no diff to review.  This tool closes that gap:
it runs every registered benchmark in its CI (``--quick``) shape, writes the
canonical record to ``benchmarks/records/BENCH_<name>.json``, and prints how
each numeric headline moved against the record committed at ``HEAD``.

The comparison is informational by default (timings move with the host; the
benchmarks' own identity/floor gates are what CI enforces).  ``--check``
turns any *gate regression* — a benchmark exiting non-zero — into a non-zero
exit from this tool as well.

Usage:

    PYTHONPATH=src python tools/record_bench.py                 # run + record all
    PYTHONPATH=src python tools/record_bench.py kernels         # one benchmark
    PYTHONPATH=src python tools/record_bench.py --compare-only  # diff without running
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RECORDS_DIR = os.path.join("benchmarks", "records")

#: name → benchmark script (run with ``--quick --output <record>``).
BENCHMARKS: dict[str, str] = {
    "saturation": "benchmarks/bench_saturation_batch.py",
    "storage": "benchmarks/bench_storage_intern.py",
    "subsumption": "benchmarks/bench_subsumption_compiled.py",
    "kernels": "benchmarks/bench_binding_matrix.py",
    "parallel": "benchmarks/bench_parallel_fanout.py",
    "shard": "benchmarks/bench_shard_scale.py",
    "faults": "benchmarks/bench_fault_tolerance.py",
}

#: Benchmarks whose headline numbers are parallel speed-ups: their records
#: carry an explicit core count and a loud annotation when measured on a
#: host that cannot demonstrate parallelism.
PARALLEL_BENCHMARKS = ("parallel", "shard")


def _host_metadata() -> dict:
    """Host facts stamped into every record — timings are host-relative."""
    try:
        effective = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - macOS / Windows
        effective = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def record_path(name: str) -> str:
    return os.path.join(RECORDS_DIR, f"BENCH_{name}.json")


def _flatten(value, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a JSON payload as ``dotted.path → value``."""
    leaves: dict[str, float] = {}
    if isinstance(value, dict):
        for key, child in value.items():
            leaves.update(_flatten(child, f"{prefix}{key}."))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            label = child.get("cell", index) if isinstance(child, dict) else index
            leaves.update(_flatten(child, f"{prefix}{label}."))
    elif isinstance(value, bool):
        leaves[prefix.rstrip(".")] = float(value)
    elif isinstance(value, (int, float)):
        leaves[prefix.rstrip(".")] = float(value)
    return leaves


def _previous_record(path: str) -> dict | None:
    """The record as committed at HEAD, or None when HEAD has no record."""
    shown = subprocess.run(
        ["git", "show", f"HEAD:{path.replace(os.sep, '/')}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if shown.returncode != 0:
        return None
    try:
        return json.loads(shown.stdout)
    except json.JSONDecodeError:
        return None


def compare(name: str, fresh: dict, previous: dict | None) -> None:
    if previous is None:
        print(f"  {name}: no record at HEAD — first recording")
        return
    old_leaves = _flatten(previous)
    new_leaves = _flatten(fresh)
    moved = []
    for key in sorted(old_leaves.keys() & new_leaves.keys()):
        old, new = old_leaves[key], new_leaves[key]
        if old != new:
            moved.append((key, old, new))
    for key in sorted(new_leaves.keys() - old_leaves.keys()):
        moved.append((key, float("nan"), new_leaves[key]))
    if not moved:
        print(f"  {name}: unchanged against HEAD")
        return
    print(f"  {name}: {len(moved)} metrics moved against HEAD")
    for key, old, new in moved:
        ratio = f" ({new / old:.2f}x)" if old == old and old else ""
        print(f"    {key:<58} {old:>10.4g} -> {new:<10.4g}{ratio}")


def run_benchmark(name: str, script: str) -> int:
    """Run one benchmark, writing its canonical record; returns its exit code."""
    path = record_path(name)
    os.makedirs(os.path.join(REPO_ROOT, RECORDS_DIR), exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if part
    )
    completed = subprocess.run(
        [sys.executable, script, "--quick", "--output", path],
        cwd=REPO_ROOT,
        env=env,
    )
    full_path = os.path.join(REPO_ROOT, path)
    if os.path.exists(full_path):
        # Stamp host metadata into every record: a committed timing is only
        # reviewable next to the cpu/platform it was measured on.  Fields a
        # benchmark already recorded itself (jobs, start_method) win.
        with open(full_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["host"] = {**_host_metadata(), **payload.get("host", {})}
        if name in PARALLEL_BENCHMARKS:
            # A committed speed-up is only reviewable next to the cores it
            # had to work with; sub-1x results from a core-starved host are
            # annotated so the trajectory is never silently "regressed" by
            # the container the recording ran on.
            effective = payload["host"].get("effective_cpus") or 1
            payload["effective_cores"] = effective
            sub_unit = sorted(
                key
                for key, value in _flatten(payload).items()
                if key.endswith("speedup") and value < 1.0
            )
            if effective < 2 and sub_unit:
                payload["core_limited_note"] = (
                    f"recorded on a host with {effective} effective core(s): "
                    f"sub-1x speedups ({', '.join(sub_unit)}) reflect the "
                    f"missing cores, not a code regression"
                )
                print(f"  note: {name} record is core-limited ({effective} effective core(s))")
        with open(full_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return completed.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", metavar="name",
                        help=f"benchmarks to record (default: all of {', '.join(BENCHMARKS)})")
    parser.add_argument("--compare-only", action="store_true",
                        help="diff the existing records against HEAD without running")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when any benchmark's own gates fail")
    args = parser.parse_args(argv)

    names = args.names or list(BENCHMARKS)
    unknown = [name for name in names if name not in BENCHMARKS]
    if unknown:
        parser.error(f"unknown benchmark(s) {', '.join(unknown)}; choose from {', '.join(BENCHMARKS)}")
    failures = []
    for name in names:
        path = record_path(name)
        previous = _previous_record(path)
        if not args.compare_only:
            print(f"recording {name} ({BENCHMARKS[name]}) ...")
            if run_benchmark(name, BENCHMARKS[name]) != 0:
                failures.append(name)
        full_path = os.path.join(REPO_ROOT, path)
        if not os.path.exists(full_path):
            print(f"  {name}: no record at {path}")
            continue
        with open(full_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
        compare(name, fresh, previous)

    if failures:
        print(f"benchmark gates failed: {', '.join(failures)}", file=sys.stderr)
        return 1 if args.check else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
