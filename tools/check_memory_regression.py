"""CI guard against memory regressions in the learning pipeline.

Runs the scenario-smoke workload (one cell of the synthetic dirty-scenario
grid: generate, fit on dirty, fit on clean, evaluate — the same shape as
``python -m repro.evaluation.scenarios --smoke``) under ``tracemalloc`` and
compares the peak traced allocation against the recorded baseline in
``tools/memory_baseline.json``.  The build fails when the peak grows more
than the allowed fraction (default 25%) over the baseline.

Peak *traced* bytes are used instead of process RSS on purpose: tracemalloc
counts exactly the Python allocations the code performs, so the measurement
is deterministic across runs and comparable across CI hosts, where RSS is
dominated by allocator/runtime noise.

Usage:

    PYTHONPATH=src python tools/check_memory_regression.py            # check
    PYTHONPATH=src python tools/check_memory_regression.py --update   # record a new baseline
    PYTHONPATH=src python tools/check_memory_regression.py --max-growth 0.25
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tracemalloc

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "memory_baseline.json")


def measure_peak_bytes() -> int:
    """Peak traced bytes of one scenario-smoke cell (import-to-evaluation)."""
    from repro.core import DLearnConfig
    from repro.data.synthetic import ScenarioSpec
    from repro.evaluation.scenarios import run_scenario_grid

    spec = ScenarioSpec(
        n_entities=45,
        n_positives=6,
        n_negatives=12,
        string_variant_intensity=0.3,
        md_drift=0.3,
        seed=11,
    )
    config = DLearnConfig(
        iterations=3,
        sample_size=8,
        top_k_matches=3,
        generalization_sample=4,
        max_clauses=4,
        min_clause_positive_coverage=2,
        min_clause_precision=0.55,
        seed=11,
    )
    tracemalloc.start()
    run_scenario_grid(spec, {"md_drift": [0.3]}, config=config, test_fraction=0.25, seed=11)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true", help="record the measured peak as the new baseline")
    parser.add_argument(
        "--max-growth",
        type=float,
        default=0.25,
        help="allowed fractional growth over the baseline before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    version = f"{sys.version_info.major}.{sys.version_info.minor}"
    peak = measure_peak_bytes()
    print(f"measured peak: {peak / 1e6:.2f} MB (python {version})")

    if args.update:
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(
                {"workload": "scenario-smoke-cell", "python": version, "peak_bytes": peak},
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"recorded baseline in {BASELINE_PATH}")
        return 0

    try:
        with open(BASELINE_PATH, encoding="utf-8") as handle:
            recorded = json.load(handle)
        baseline = recorded["peak_bytes"]
    except (OSError, KeyError, ValueError):
        print(
            f"FAIL: no readable baseline at {BASELINE_PATH}; run with --update to record one",
            file=sys.stderr,
        )
        return 1

    # Peak traced allocation is deterministic *per interpreter version* but
    # differs across versions (object layouts change); comparing against a
    # baseline recorded under another version would be spuriously strict or
    # vacuous, so the check only binds on the recording version.
    recorded_version = recorded.get("python")
    if recorded_version != version:
        print(
            f"SKIP: baseline was recorded under python {recorded_version}; "
            f"this is python {version}, so the comparison would not be meaningful"
        )
        return 0

    limit = baseline * (1.0 + args.max_growth)
    print(f"baseline: {baseline / 1e6:.2f} MB, limit: {limit / 1e6:.2f} MB (+{args.max_growth * 100:.0f}%)")
    if peak > limit:
        print(
            f"FAIL: peak memory {peak / 1e6:.2f} MB exceeds the recorded baseline "
            f"{baseline / 1e6:.2f} MB by more than {args.max_growth * 100:.0f}%. "
            "If the growth is intentional, re-record with --update.",
            file=sys.stderr,
        )
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
