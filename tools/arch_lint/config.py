"""Lint configuration: engine excludes plus per-rule scopes and allowlists.

Defaults are encoded here so the engine runs without any config file; the
checked-in ``tools/arch_lint/config.toml`` overrides them per key.  Path
patterns are :mod:`fnmatch` globs matched against repo-relative POSIX paths
(note that ``*`` crosses ``/`` under fnmatch, so ``src/repro/db/*`` covers
the whole subtree).
"""

from __future__ import annotations

import fnmatch
import os
import tomllib
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["LintConfig", "RuleConfig", "load_config", "DEFAULT_CONFIG_PATH"]

DEFAULT_CONFIG_PATH = os.path.join(os.path.dirname(__file__), "config.toml")


def _match_any(path: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)


@dataclass(frozen=True)
class RuleConfig:
    """One rule's scope and options.

    ``paths`` scopes the rule (empty tuple = everywhere the engine scans);
    ``options`` carries rule-specific settings (class lists, name patterns,
    per-class method allowlists) exactly as written in the TOML table.
    """

    rule_id: str
    enabled: bool = True
    paths: tuple[str, ...] = ()
    options: Mapping[str, Any] = field(default_factory=dict)

    def applies_to(self, relpath: str) -> bool:
        if not self.enabled:
            return False
        if not self.paths:
            return True
        return _match_any(relpath, self.paths)

    def option(self, name: str, default: Any = None) -> Any:
        return self.options.get(name, default)


#: Modules gated by the typed id-plane (ID01/ID02): the storage core and the
#: compiled subsumption engine, where every id is a ``ValueId`` / ``TermId``.
_ID_PLANE_PATHS = ("src/repro/db/*", "src/repro/logic/compiled.py")

#: Learning / evaluation modules whose outputs (clauses, definitions,
#: metrics, reports) are ordering-sensitive: set iteration feeding an ordered
#: structure here makes learned definitions depend on hash seeds.
_DETERMINISM_PATHS = (
    "src/repro/core/*",
    "src/repro/evaluation/*",
    "src/repro/logic/*",
    "src/repro/constraints/*",
    "src/repro/similarity/*",
    "src/repro/baselines/*",
    "src/repro/db/*",
)

#: Names of methods that conventionally return sets/frozensets in this repo;
#: the determinism rule treats their call results as set-typed.
_SET_RETURNING = (
    "rows_with_id",
    "rows_with_value",
    "rows_for",
    "rows_for_any",
    "rows_with_ids",
    "distinct_values",
    "occurrences",
    "repair_literals_connected_to",
)

#: Session-scoped classes shared across ``n_jobs`` worker threads (or across
#: folds/prediction sessions): attribute/container writes outside
#: ``__init__`` must be lock-guarded or explicitly allowlisted.
_SHARED_CLASSES = (
    "CoverageEngine",
    "LearningSession",
    "SubsumptionChecker",
    "ClauseCompiler",
    "TermInterner",
    "DatabasePreparation",
    "_MdIndexCache",
    "SaturationCache",
    "DatabaseProbeCache",
)

_DEFAULT_RULES: dict[str, dict[str, Any]] = {
    "ID01": {"paths": list(_ID_PLANE_PATHS)},
    "ID02": {"paths": ["src/*", "tools/*"], "options": {
        "decoders": ["value_of", "decode_many", "term_of"],
        "consumers": ["rows_for", "rows_for_many", "rows_for_any", "id_frequency"],
    }},
    "DT01": {"paths": list(_DETERMINISM_PATHS), "options": {
        "set_returning_names": list(_SET_RETURNING),
        "include_dict_iteration": False,
    }},
    "TS01": {"paths": ["src/*"], "options": {
        "classes": list(_SHARED_CLASSES),
        "lock_names": ["_lock", "_verdict_lock", "_cache_lock", "lock"],
        "init_methods": ["__init__", "__post_init__"],
        "allow": {},
    }},
    "PF01": {"paths": ["src/*", "tools/*", "benchmarks/*"], "options": {
        "executor_factories": ["ProcessPoolExecutor"],
        "lock_names": ["_lock", "_verdict_lock", "_cache_lock", "lock"],
    }},
    "FT01": {"paths": ["src/repro/core/*", "src/repro/db/*"], "options": {
        "methods": ["result"],
    }},
    "CH01": {"paths": ["src/*", "tools/*", "tests/*", "benchmarks/*", "examples/*"]},
    "CH02": {"paths": ["src/repro/core/*", "src/repro/logic/*", "src/repro/similarity/*", "src/repro/db/*"], "options": {
        "cache_name_pattern": "cache",
    }},
}


@dataclass(frozen=True)
class LintConfig:
    """Engine-level excludes plus the per-rule :class:`RuleConfig` table."""

    exclude: tuple[str, ...] = ("tests/tools/fixtures/*",)
    rules: Mapping[str, RuleConfig] = field(default_factory=dict)

    def excluded(self, relpath: str) -> bool:
        return _match_any(relpath, self.exclude)

    def rule_config(self, rule_id: str) -> RuleConfig:
        config = self.rules.get(rule_id)
        if config is None:
            config = _default_rule_config(rule_id)
        return config


def _default_rule_config(rule_id: str) -> RuleConfig:
    raw = _DEFAULT_RULES.get(rule_id, {})
    return RuleConfig(
        rule_id=rule_id,
        enabled=True,
        paths=tuple(raw.get("paths", ())),
        options=dict(raw.get("options", {})),
    )


def _merge_rule(rule_id: str, raw: Mapping[str, Any]) -> RuleConfig:
    """Overlay one TOML rule table onto the built-in defaults for that rule."""
    base = _DEFAULT_RULES.get(rule_id, {})
    options = dict(base.get("options", {}))
    for key, value in raw.items():
        if key in ("enabled", "paths"):
            continue
        options[key] = value
    return RuleConfig(
        rule_id=rule_id,
        enabled=bool(raw.get("enabled", True)),
        paths=tuple(raw.get("paths", base.get("paths", ()))),
        options=options,
    )


def load_config(path: str | None = None) -> LintConfig:
    """Load ``config.toml`` (or *path*), overlaying the built-in defaults.

    A missing file yields the pure defaults, so the engine is usable from a
    bare checkout and in the fixture-driven tests.
    """
    config_path = path if path is not None else DEFAULT_CONFIG_PATH
    if not os.path.exists(config_path):
        rules = {rule_id: _default_rule_config(rule_id) for rule_id in _DEFAULT_RULES}
        return LintConfig(rules=rules)
    with open(config_path, "rb") as handle:
        raw = tomllib.load(handle)
    engine_raw = raw.get("engine", {})
    exclude = tuple(engine_raw.get("exclude", ("tests/tools/fixtures/*",)))
    rules: dict[str, RuleConfig] = {}
    raw_rules = raw.get("rules", {})
    for rule_id in set(_DEFAULT_RULES) | set(raw_rules):
        rules[rule_id] = (
            _merge_rule(rule_id, raw_rules[rule_id]) if rule_id in raw_rules else _default_rule_config(rule_id)
        )
    return LintConfig(exclude=exclude, rules=rules)
