"""Cache hygiene: memoisation layers must use sound keys and sound defaults.

**CH01** — mutable default arguments (``def f(x=[])``, ``{}``, ``set()``,
``list()``, ``dict()``, comprehensions).  The default is evaluated once and
shared across calls; in a codebase whose sessions are long-lived and shared,
a mutated default is cross-session state leakage.

**CH02** — suspicious cache keys, scoped to the memoisation-heavy modules:

* *identity keys*: ``id(obj)`` used in a subscript or ``get``/``setdefault``
  /``pop`` key on a cache-named container.  ``id()`` values are recycled
  after garbage collection, so identity-keyed caches can serve a stale
  entry for a brand-new object;
* *unhashable keys*: a ``list``/``dict``/``set`` literal (or constructor
  call) used as a cache key — a latent ``TypeError`` on first hit, or, when
  converted implicitly at each call site, a sign the canonical key form is
  not pinned down.

Cache-named means the subscripted/probed expression's trailing name contains
the configured ``cache_name_pattern`` (default ``"cache"``), case-insensitive.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import RuleConfig
from . import register
from .base import ModuleContext, RawViolation, Rule, call_name

__all__ = ["MutableDefaults", "CacheKeys"]

_MUTABLE_CONSTRUCTORS = ("list", "dict", "set", "defaultdict", "OrderedDict", "Counter")


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node.func) in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaults(Rule):
    id = "CH01"
    name = "mutable-default-argument"
    description = "Default argument values must not be mutable (shared across calls)."

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            name = getattr(node, "name", "<lambda>")
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                if _is_mutable_literal(default):
                    yield self.violation(
                        default,
                        f"mutable default argument in {name!r}; use None and create "
                        "the container inside the function",
                    )


def _trailing_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _contains_id_call(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Name) and child.func.id == "id":
            return True
    return False


def _unhashable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node.func) in ("list", "dict", "set")
    return False


@register
class CacheKeys(Rule):
    id = "CH02"
    name = "cache-key-hygiene"
    description = (
        "Cache containers must not be keyed by id(...) (identity recycling) or by "
        "unhashable literals."
    )

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        pattern = str(config.option("cache_name_pattern", "cache")).lower()
        for node in ast.walk(module.tree):
            key: ast.expr | None = None
            container: str | None = None
            if isinstance(node, ast.Subscript):
                container = _trailing_name(node.value)
                key = node.slice
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("get", "setdefault", "pop") and node.args:
                    container = _trailing_name(node.func.value)
                    key = node.args[0]
            if key is None or container is None or pattern not in container.lower():
                continue
            if _contains_id_call(key):
                yield self.violation(
                    key,
                    f"cache {container!r} keyed by id(...): id values are recycled after GC; "
                    "key on stable identity (interned ids, value tuples) instead",
                )
            elif _unhashable_literal(key):
                yield self.violation(
                    key,
                    f"cache {container!r} keyed by an unhashable literal; use a tuple/frozenset",
                )
