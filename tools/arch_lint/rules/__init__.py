"""Rule registry.

Rules self-register via the :func:`register` decorator at import time; the
rule modules are imported at the bottom of this file, so ``all_rules()``
returns the complete registry.  Adding a rule = adding a module here plus a
``[rules.<ID>]`` table in ``config.toml`` (scopes/options) if it needs one.
"""

from __future__ import annotations

from typing import Type

from .base import ModuleContext, RawViolation, Rule

__all__ = ["register", "all_rules", "rule_by_id", "Rule", "RawViolation", "ModuleContext"]

_REGISTRY: dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class()
    return rule_class


def all_rules() -> dict[str, Rule]:
    return dict(_REGISTRY)


def rule_by_id(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from exc


# Import order defines nothing semantic; modules register on import.
from . import (  # noqa: E402,F401
    cache_hygiene,
    deadlines,
    determinism,
    id_plane,
    process_safety,
    thread_safety,
)
