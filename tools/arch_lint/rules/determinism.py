"""Determinism: set iteration must not feed ordering-sensitive structures.

Learned definitions, evaluation reports and benchmark records must be a pure
function of (data, seed) — never of the process's hash seed.  ``set`` /
``frozenset`` iteration order is hash order, which for strings varies between
processes; the moment it reaches an ordered sink (a list, a tuple, a joined
string, an emitted sequence) the run is no longer reproducible.

**DT01** flags, inside the configured learning/evaluation modules, every
ordered sink fed by a set-typed expression without an intervening
``sorted()``:

* ``list(S)`` / ``tuple(S)`` / ``enumerate(S)`` calls,
* ``sep.join(S)``,
* list comprehensions iterating a set,
* ``for`` loops over a set whose body appends/extends a sequence or yields,
* ``seq.extend(S)``.

Set-typedness is inferred per scope: set literals and comprehensions,
``set()`` / ``frozenset()`` constructors, set-operator expressions, calls to
methods this repo conventionally returns sets from (``rows_with_id``,
``distinct_values``, ...; see ``config.toml``), and local names assigned any
of the above.  Order-insensitive consumers (``sorted``, ``min``, ``max``,
``sum``, ``len``, ``any``, ``all``, ``set``, ``frozenset``) sanction their
argument.

Dict iteration is insertion-ordered in CPython >= 3.7 and this repo builds
its dicts deterministically, so dict-valued iteration is only flagged when
``include_dict_iteration`` is enabled in the rule's config.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import RuleConfig
from . import register
from .base import ModuleContext, RawViolation, Rule, call_name

__all__ = ["SetIterationOrder"]

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = ("union", "intersection", "difference", "symmetric_difference", "copy")
_ORDER_FREE_CONSUMERS = ("sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset")
_ORDERED_CALL_SINKS = ("list", "tuple", "enumerate")
_DICT_VIEW_METHODS = ("keys", "values", "items")


def _scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk *scope* without descending into nested function/class scopes."""
    todo = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(node))


class _ScopeAnalysis:
    """Set-typed name inference plus sink detection for one scope."""

    def __init__(self, scope: ast.AST, config: RuleConfig) -> None:
        self.scope = scope
        self.set_returning = set(config.option("set_returning_names", []))
        self.include_dicts = bool(config.option("include_dict_iteration", False))
        self.set_names: set[str] = set()
        self.parent: dict[ast.AST, ast.AST] = {}
        nodes = list(_scope_statements(scope))
        for node in nodes:
            for child in ast.iter_child_nodes(node):
                self.parent[child] = node
        self._infer_names(nodes)

    # ------------------------------------------------------------------ #
    # set-typed inference
    # ------------------------------------------------------------------ #
    def _infer_names(self, nodes: list[ast.AST]) -> None:
        for _ in range(4):  # fixpoint; chains of assignments are short
            before = len(self.set_names)
            for node in nodes:
                if isinstance(node, ast.Assign):
                    if self.is_set_typed(node.value):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self.set_names.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name) and self._is_set_annotation(node.annotation):
                        self.set_names.add(node.target.id)
                elif isinstance(node, ast.AugAssign):
                    if (
                        isinstance(node.target, ast.Name)
                        and isinstance(node.op, _SET_OPS)
                        and (node.target.id in self.set_names or self.is_set_typed(node.value))
                    ):
                        self.set_names.add(node.target.id)
            if len(self.set_names) == before:
                break

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in ("Set", "FrozenSet", "AbstractSet")
        return isinstance(annotation, ast.Name) and annotation.id in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
            "AbstractSet",
        )

    def is_set_typed(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.IfExp):
            return self.is_set_typed(node.body) or self.is_set_typed(node.orelse)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_typed(node.left) or self.is_set_typed(node.right)
        if isinstance(node, ast.Call):
            callee = call_name(node.func)
            if callee in ("set", "frozenset"):
                return True
            if callee in self.set_returning:
                return True
            if (
                callee in _SET_METHODS
                and isinstance(node.func, ast.Attribute)
                and self.is_set_typed(node.func.value)
            ):
                return True
            if (
                self.include_dicts
                and callee in _DICT_VIEW_METHODS
                and isinstance(node.func, ast.Attribute)
            ):
                return True
        return False

    def is_unordered(self, node: ast.expr) -> bool:
        """Set-typed, or a generator expression drawing from a set."""
        if self.is_set_typed(node):
            return True
        if isinstance(node, ast.GeneratorExp):
            return any(self.is_set_typed(gen.iter) for gen in node.generators)
        return False

    # ------------------------------------------------------------------ #
    # sinks
    # ------------------------------------------------------------------ #
    def _inside_order_free_consumer(self, node: ast.AST) -> bool:
        parent = self.parent.get(node)
        if isinstance(parent, ast.Call):
            return call_name(parent.func) in _ORDER_FREE_CONSUMERS
        return False

    def sinks(self) -> Iterator[tuple[ast.AST, str]]:
        for node in _scope_statements(self.scope):
            if isinstance(node, ast.Call):
                yield from self._call_sinks(node)
            elif isinstance(node, ast.ListComp):
                if self._inside_order_free_consumer(node):
                    continue
                for gen in node.generators:
                    if self.is_set_typed(gen.iter):
                        yield node, "list comprehension iterates a set; wrap the iterable in sorted(...)"
                        break
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._loop_sinks(node)

    def _call_sinks(self, node: ast.Call) -> Iterator[tuple[ast.AST, str]]:
        callee = call_name(node.func)
        if callee in _ORDERED_CALL_SINKS and node.args and self.is_unordered(node.args[0]):
            if not self._inside_order_free_consumer(node):
                yield node, f"{callee}() over a set fixes an arbitrary iteration order; use sorted(...)"
        elif callee == "join" and isinstance(node.func, ast.Attribute) and node.args:
            if self.is_unordered(node.args[0]):
                yield node, "str.join over a set produces a hash-order string; use sorted(...)"
        elif callee == "extend" and isinstance(node.func, ast.Attribute) and node.args:
            if self.is_unordered(node.args[0]):
                yield node, "extend() from a set appends in hash order; use sorted(...)"

    def _loop_sinks(self, node: ast.For | ast.AsyncFor) -> Iterator[tuple[ast.AST, str]]:
        if not self.is_set_typed(node.iter):
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                callee = call_name(child.func)
                if callee in ("append", "extend", "insert") and isinstance(child.func, ast.Attribute):
                    yield node, (
                        "loop over a set feeds an ordered sequence "
                        f"(via .{callee}()); iterate sorted(...) instead"
                    )
                    return
            elif isinstance(child, (ast.Yield, ast.YieldFrom)):
                yield node, "loop over a set yields in hash order; iterate sorted(...) instead"
                return


@register
class SetIterationOrder(Rule):
    id = "DT01"
    name = "set-iteration-order"
    description = (
        "Set/frozenset iteration reaching an ordered sink (list/tuple/join/append/yield) "
        "without sorted() makes learned outputs depend on the hash seed."
    )

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        scopes: list[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        seen: set[tuple[int, int]] = set()
        for scope in scopes:
            analysis = _ScopeAnalysis(scope, config)
            for node, message in analysis.sinks():
                key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
                if key in seen:
                    continue
                seen.add(key)
                yield self.violation(node, message)
