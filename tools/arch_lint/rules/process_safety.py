"""Process-pool safety: what crosses a process boundary must pickle.

:mod:`repro.core.fanout` ships coverage work to ``ProcessPoolExecutor``
workers.  Everything submitted to such a pool — the callable, its arguments,
the ``initializer``/``initargs`` pair — is pickled; a lambda, a function
defined inside another function, a ``threading.Lock`` or an open file handle
in that payload raises ``PicklingError`` at dispatch time (or, worse, only
under the ``spawn`` start method, where CI on Linux ``fork`` never sees it).
The sanctioned shape is the one ``fanout`` uses: module-level worker
functions over module-level seeded state, with plain ints/bytes/tuples as
arguments.

**PF01** flags, at submission sites of process executors (direct
``ProcessPoolExecutor(...)`` calls; names, ``self`` attributes and loop
variables traceably bound to one; ``submit``/``map`` through either):

* a ``lambda`` or a function *defined inside another function* as the
  submitted callable or ``initializer`` — neither pickles by reference;
* arguments (``submit`` arguments and ``initargs`` elements) that carry a
  lock (``self.<attr>`` where the attribute is a configured lock name or
  contains ``"lock"``), an inline ``open(...)`` / ``Lock()``-family call, a
  name bound to one, or a lambda.

Thread pools are exempt: nothing is pickled there, and closures over engine
state are the thread backend's sanctioned idiom.  The receiver analysis is
deliberately local — only executors *visibly* constructed from a configured
factory in the same module are treated as process pools, so the rule never
guesses about objects that merely look pool-shaped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import RuleConfig
from . import register
from .base import ModuleContext, RawViolation, Rule, call_name, walk_scopes

__all__ = ["ProcessPoolPicklability"]

#: Constructor calls whose results never pickle: the ``threading`` primitive
#: family plus open file handles.
_NONPICKLABLE_CALLS = (
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "open",
)


def _self_attr(node: ast.expr) -> str | None:
    """``self.attr`` -> ``"attr"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _PoolTracker:
    """Names / ``self`` attributes traceably bound to a process-executor factory."""

    def __init__(self, tree: ast.Module, factories: tuple[str, ...]) -> None:
        self.factories = factories
        self.names: set[str] = set()
        self.attrs: set[str] = set()
        self._collect_bindings(tree)
        self._collect_aliases(tree)

    # ------------------------------------------------------------------ #
    def _is_factory_call(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and call_name(node.func) in self.factories

    def _value_builds_pool(self, value: ast.expr) -> bool:
        """The assigned value is a factory call or a container of them."""
        if self._is_factory_call(value):
            return True
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            return any(self._is_factory_call(element) for element in value.elts)
        if isinstance(value, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._is_factory_call(value.elt)
        return False

    def _bind(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
            return
        attr = _self_attr(target)
        if attr is not None:
            self.attrs.add(attr)

    def _collect_bindings(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._value_builds_pool(node.value):
                for target in node.targets:
                    self._bind(target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if self._is_factory_call(item.context_expr) and item.optional_vars is not None:
                        self._bind(item.optional_vars)

    def _collect_aliases(self, tree: ast.Module) -> None:
        """Loop variables iterating a tracked container are pools themselves."""
        for _ in range(3):  # chained aliases converge in a hop or two
            before = len(self.names)
            for node in ast.walk(tree):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if self.refers_to_pool(node.iter):
                        self._bind(node.target)
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
                    for generator in node.generators:
                        if self.refers_to_pool(generator.iter):
                            self._bind(generator.target)
            if len(self.names) == before:
                return

    # ------------------------------------------------------------------ #
    def refers_to_pool(self, node: ast.expr) -> bool:
        if self._is_factory_call(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        attr = _self_attr(node)
        if attr is not None:
            return attr in self.attrs
        if isinstance(node, ast.Subscript):
            return self.refers_to_pool(node.value)
        return False


@register
class ProcessPoolPicklability(Rule):
    id = "PF01"
    name = "process-pool-picklability"
    description = (
        "Payloads submitted to process executors must pickle: no lambdas or "
        "nested functions as callables, no locks or open handles in arguments."
    )

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        factories = tuple(config.option("executor_factories", ["ProcessPoolExecutor"]))
        lock_names = tuple(config.option("lock_names", ["_lock"]))
        tracker = _PoolTracker(module.tree, factories)

        # Functions defined inside another function don't pickle by reference.
        nested_defs: set[str] = set()
        for scope in walk_scopes(module.tree):
            for node in ast.walk(scope):
                if node is not scope and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested_defs.add(node.name)

        # Names visibly bound to a non-picklable constructor result.
        handle_bindings: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and call_name(node.value.func) in _NONPICKLABLE_CALLS
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        handle_bindings[target.id] = call_name(node.value.func) or "?"

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node.func) in factories:
                yield from self._check_initializer(node, nested_defs, handle_bindings, lock_names)
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and tracker.refers_to_pool(node.func.value)
            ):
                yield from self._check_submission(node, nested_defs, handle_bindings, lock_names)

    # ------------------------------------------------------------------ #
    def _check_initializer(
        self,
        call: ast.Call,
        nested_defs: set[str],
        handle_bindings: dict[str, str],
        lock_names: tuple[str, ...],
    ) -> Iterator[RawViolation]:
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                yield from self._check_callable(keyword.value, nested_defs, "initializer")
            elif keyword.arg == "initargs" and isinstance(keyword.value, (ast.Tuple, ast.List)):
                for element in keyword.value.elts:
                    yield from self._check_argument(element, handle_bindings, lock_names, "initargs")

    def _check_submission(
        self,
        call: ast.Call,
        nested_defs: set[str],
        handle_bindings: dict[str, str],
        lock_names: tuple[str, ...],
    ) -> Iterator[RawViolation]:
        method = call.func.attr  # type: ignore[union-attr]  # guarded by caller
        if not call.args:
            return
        yield from self._check_callable(call.args[0], nested_defs, method)
        if method == "map":
            return  # iterable *elements* are pickled; the iterable itself is not
        for argument in call.args[1:]:
            yield from self._check_argument(argument, handle_bindings, lock_names, method)
        for keyword in call.keywords:
            yield from self._check_argument(keyword.value, handle_bindings, lock_names, method)

    def _check_callable(
        self, node: ast.expr, nested_defs: set[str], site: str
    ) -> Iterator[RawViolation]:
        if isinstance(node, ast.Lambda):
            yield self.violation(
                node,
                f"lambda passed as process-pool {site}: lambdas don't pickle — "
                "use a module-level function",
            )
        elif isinstance(node, ast.Name) and node.id in nested_defs:
            yield self.violation(
                node,
                f"nested function {node.id!r} passed as process-pool {site}: functions "
                "defined inside another function don't pickle — move it to module level",
            )

    def _check_argument(
        self,
        argument: ast.expr,
        handle_bindings: dict[str, str],
        lock_names: tuple[str, ...],
        site: str,
    ) -> Iterator[RawViolation]:
        for node in ast.walk(argument):
            attr = _self_attr(node)
            if attr is not None and (attr in lock_names or "lock" in attr.lower()):
                yield self.violation(
                    node,
                    f"self.{attr} in process-pool {site} arguments: locks don't pickle "
                    "and would be meaningless in another process",
                )
            elif isinstance(node, ast.Call) and call_name(node.func) in _NONPICKLABLE_CALLS:
                yield self.violation(
                    node,
                    f"{call_name(node.func)}(...) result in process-pool {site} arguments "
                    "does not pickle — pass plain data and rebuild in the worker",
                )
            elif isinstance(node, ast.Name) and node.id in handle_bindings:
                yield self.violation(
                    node,
                    f"{node.id!r} (bound to {handle_bindings[node.id]}(...)) in process-pool "
                    f"{site} arguments does not pickle — pass plain data and rebuild in the worker",
                )
            elif isinstance(node, ast.Lambda):
                yield self.violation(
                    node,
                    f"lambda in process-pool {site} arguments: lambdas don't pickle",
                )
