"""Dispatch deadlines: awaiting a future must carry an explicit timeout.

The supervision layer (:mod:`repro.core.supervision`) turns a hung worker
into a recoverable *timeout* fault precisely because every await on a
process-pool future states its deadline: ``future.result(timeout=...)``.
A bare ``future.result()`` blocks forever — a worker wedged in a native
extension, a deadlocked pipe, a lost SIGCHLD all become a silently hung
learner instead of a killed-and-recovered worker.  The deadline itself
comes from the session :class:`~repro.core.supervision.DeadlinePolicy`
(``timeout_for``), so the policy's ``None`` escape hatch remains the one
sanctioned way to wait unboundedly — explicitly, at the policy layer, not
implicitly at a call site someone forgot.

**FT01** flags every ``<expr>.result(...)`` call in the configured paths
whose arguments do not include an explicit ``timeout`` — positionally
(``concurrent.futures.Future.result`` takes it first) or as a keyword.
The method-name match is deliberate: in the supervised planes everything
named ``.result`` *is* a future await, and a false positive is fixed by
naming the deadline, which is exactly the behaviour the rule exists to
force.  Methods can be widened per-repo through the ``methods`` option.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import RuleConfig
from . import register
from .base import ModuleContext, RawViolation, Rule

__all__ = ["FutureDeadlines"]


@register
class FutureDeadlines(Rule):
    id = "FT01"
    name = "future-deadlines"
    description = (
        "Awaiting a pool future must state its deadline: every .result(...) "
        "call passes an explicit timeout (from the session DeadlinePolicy)."
    )

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        methods = tuple(config.option("methods", ["result"]))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute) or node.func.attr not in methods:
                continue
            if node.args:
                continue  # positional timeout (Future.result's first parameter)
            if any(keyword.arg == "timeout" for keyword in node.keywords):
                continue
            yield self.violation(
                node,
                f".{node.func.attr}() without a timeout blocks forever on a hung "
                "worker — pass timeout=<DeadlinePolicy.timeout_for(...)> so the "
                "supervisor can classify and recover the stall",
            )
