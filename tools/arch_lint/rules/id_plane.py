"""Id-plane discipline: the typed ``ValueId`` / ``TermId`` plane stays typed.

The storage core (:mod:`repro.db`) and the compiled subsumption engine
(:mod:`repro.logic.compiled`) run on dense integer ids.  Mixing a decoded
value into an id-keyed probe does not crash — it silently misses every
lookup (``MISSING_ID`` semantics), which is the worst failure mode there is.
Two rules keep the plane closed:

* **ID01** — every function in a gated module is fully annotated (all
  parameters and the return type).  The annotations are what lets the
  strict-ish mypy job distinguish ``ValueId`` from a decoded value; an
  unannotated def is a hole in the fence, so the fence is enforced here,
  locally, without requiring mypy to be installed.
* **ID02** — a decoded-value producer (``value_of`` / ``decode_many`` /
  ``term_of``) must not appear directly as an argument to an id-consuming
  call (``*_id`` / ``*_ids`` suffixed names, index ``rows_for*`` probes,
  ``id_frequency``).  This is the AST-visible slice of exactly the bug the
  NewType plane exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import RuleConfig
from . import register
from .base import ModuleContext, RawViolation, Rule, call_name

__all__ = ["IdPlaneAnnotations", "DecodedValueIntoIdSink"]


@register
class IdPlaneAnnotations(Rule):
    id = "ID01"
    name = "id-plane-annotations"
    description = (
        "Functions in id-plane modules (src/repro/db, src/repro/logic/compiled.py) "
        "must be fully annotated so mypy can police ValueId/TermId boundaries."
    )

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = self._missing_annotations(node)
            if missing:
                yield self.violation(
                    node,
                    f"function {node.name!r} is missing annotations for: {', '.join(missing)} "
                    "(id-plane modules must be fully annotated)",
                )

    @staticmethod
    def _missing_annotations(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        missing: list[str] = []
        args = node.args
        positional = args.posonlyargs + args.args
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return")
        return missing


@register
class DecodedValueIntoIdSink(Rule):
    id = "ID02"
    name = "decoded-value-into-id-sink"
    description = (
        "The result of a decode call (value_of/decode_many/term_of) must not be "
        "passed directly to an id-consuming call (*_id, *_ids, rows_for*, id_frequency)."
    )

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        decoders = set(config.option("decoders", ["value_of", "decode_many", "term_of"]))
        consumers = set(config.option("consumers", []))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node.func)
            if callee is None or not self._is_consumer(callee, consumers):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                producer = self._decode_producer(arg, decoders)
                if producer is not None:
                    yield self.violation(
                        arg,
                        f"decoded value from {producer}() passed to id-consuming call {callee}(); "
                        "intern it (or keep the id) instead",
                    )

    @staticmethod
    def _is_consumer(callee: str, consumers: set[str]) -> bool:
        return callee.endswith("_id") or callee.endswith("_ids") or callee in consumers

    @staticmethod
    def _decode_producer(node: ast.expr, decoders: set[str]) -> str | None:
        if isinstance(node, ast.Starred):
            node = node.value
        if isinstance(node, ast.Call):
            callee = call_name(node.func)
            if callee in decoders:
                return callee
        return None
