"""Rule protocol and per-module context shared by all rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..config import RuleConfig

__all__ = ["ModuleContext", "Rule", "RawViolation"]


@dataclass(frozen=True)
class RawViolation:
    """A rule finding before fingerprinting: (line, col, message)."""

    line: int
    col: int
    message: str


@dataclass
class ModuleContext:
    """One parsed module as rules see it."""

    relpath: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules; subclasses register via ``@register``.

    A rule inspects one module's AST and yields :class:`RawViolation`s.  It
    must be a pure function of (tree, config): rules never read other files,
    so the engine can scan modules independently and in any order.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        raise NotImplementedError

    # Convenience for subclasses.
    @staticmethod
    def violation(node: ast.AST, message: str) -> RawViolation:
        return RawViolation(
            line=getattr(node, "lineno", 1), col=getattr(node, "col_offset", 0), message=message
        )


def call_name(node: ast.expr) -> str | None:
    """The trailing name of a called function: ``f`` for ``f(..)``/``x.f(..)``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def walk_scopes(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function scope of the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


IsSetTyped = Callable[[ast.expr], bool]
