"""Thread-safety: shared session state is written under a lock, or not at all.

``CoverageEngine.batch_covers`` fans per-example checks across a thread pool,
and ``DatabasePreparation`` / ``ClauseCompiler`` / ``TermInterner`` instances
are shared across folds and prediction sessions.  On today's GIL these races
mostly lose updates silently; on free-threaded Python they corrupt dicts.
The invariant: for the configured shared classes, any write to ``self``
state outside ``__init__`` must be lock-guarded or appear in the per-class
method allowlist (with a comment in ``config.toml`` saying *why* the method
is single-threaded by contract).

**TS01** flags, inside classes named in the rule's ``classes`` list:

* attribute rebinds — ``self.attr = ...``, ``self.attr += ...``,
  ``del self.attr``;
* container writes through an attribute — ``self.attr[key] = ...``,
  ``del self.attr[key]``;

when they occur outside the configured init methods, outside any
``with self.<lock>`` block (a lock is an attribute whose name is in
``lock_names`` or contains ``"lock"``), and outside allowlisted methods.

Writes to nested attributes (``self._thread_state.checker = ...``) are not
flagged: thread-local and other deliberately per-thread carriers are the
sanctioned pattern for unshared state.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from ..config import RuleConfig
from . import register
from .base import ModuleContext, RawViolation, Rule

__all__ = ["SharedStateWrites"]


def _is_self_attribute(node: ast.expr) -> str | None:
    """``self.attr`` -> ``"attr"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_expr(node: ast.expr, lock_names: tuple[str, ...]) -> bool:
    """``self.<lock>`` or ``self.<lock>.acquire()``-style context expressions."""
    attr = _is_self_attribute(node)
    if attr is None and isinstance(node, ast.Call):
        attr = _is_self_attribute(node.func) if isinstance(node.func, ast.Attribute) else None
        if attr is None and isinstance(node.func, ast.Attribute):
            attr = _is_self_attribute(node.func.value)
    if attr is None:
        return False
    return attr in lock_names or "lock" in attr.lower()


class _MethodScanner:
    """Finds unguarded self-writes in one method body."""

    def __init__(self, lock_names: tuple[str, ...]) -> None:
        self.lock_names = lock_names
        self.findings: list[tuple[ast.AST, str]] = []

    def scan(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> list[tuple[ast.AST, str]]:
        for statement in method.body:
            self._visit(statement, guarded=False)
        return self.findings

    # ------------------------------------------------------------------ #
    def _visit(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            return  # nested scopes are not `self` methods of this class
        if isinstance(node, (ast.With, ast.AsyncWith)):
            now_guarded = guarded or any(
                _is_lock_expr(item.context_expr, self.lock_names) for item in node.items
            )
            for child in node.body:
                self._visit(child, now_guarded)
            return
        if not guarded:
            self._check_statement(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child, guarded)

    def _check_statement(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._check_target(node, target, "assignment")
        elif isinstance(node, ast.AugAssign):
            self._check_target(node, node.target, "assignment")
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:  # a bare annotation is not a write
                self._check_target(node, node.target, "assignment")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_target(node, target, "deletion")

    def _check_target(self, statement: ast.AST, target: ast.expr, kind: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(statement, element, kind)
            return
        attr = _is_self_attribute(target)
        if attr is not None:
            self.findings.append(
                (statement, f"unguarded {kind} to shared attribute self.{attr}")
            )
            return
        if isinstance(target, ast.Subscript):
            attr = _is_self_attribute(target.value)
            if attr is not None:
                self.findings.append(
                    (statement, f"unguarded {kind} into shared container self.{attr}[...]")
                )


@register
class SharedStateWrites(Rule):
    id = "TS01"
    name = "shared-state-writes"
    description = (
        "Writes to shared session/engine/cache state outside __init__ must be "
        "lock-guarded or explicitly allowlisted per class in config.toml."
    )

    def check(self, module: ModuleContext, config: RuleConfig) -> Iterator[RawViolation]:
        classes = set(config.option("classes", []))
        if not classes:
            return
        lock_names = tuple(config.option("lock_names", ["_lock"]))
        init_methods = set(config.option("init_methods", ["__init__", "__post_init__"]))
        allow: Mapping[str, list[str]] = config.option("allow", {})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in classes:
                continue
            allowed = set(allow.get(node.name, []))
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in init_methods or method.name in allowed:
                    continue
                for statement, message in _MethodScanner(lock_names).scan(method):
                    yield self.violation(
                        statement,
                        f"{node.name}.{method.name}: {message} (shared across threads/sessions; "
                        "guard with a lock or allowlist the method in config.toml)",
                    )
