"""Architectural lint engine: the repo's invariants as executable AST rules.

PRs 4-5 moved the system onto a dense-integer plane (value ids in the
storage core, term ids in the compiled subsumption engine) and onto shared
sessions with ``n_jobs`` thread fan-out.  The bug classes that now threaten
correctness are exactly the ones a test suite cannot exhaustively catch:

* **id/value mixing** — passing a decoded value where a dense id is
  expected (or vice versa) silently misses every id-keyed probe;
* **nondeterministic iteration** — set iteration order feeding an
  ordering-sensitive structure makes learned definitions run-dependent;
* **unsynchronized shared-state writes** — session objects are shared
  across worker threads, so post-``__init__`` writes outside a lock are
  data races waiting for free-threaded Python;
* **cache hygiene** — mutable default arguments and identity-keyed or
  unhashable cache keys corrupt the memoisation layers.

Each invariant is a registered :class:`~tools.arch_lint.rules.base.Rule`
(see :mod:`tools.arch_lint.rules`); the engine walks files, applies rules
according to per-rule path scopes from ``config.toml``, honours inline
``# arch-lint: disable=RULE`` suppressions, and diffs the surviving
violations against the recorded baseline (``baseline.txt``).

Run it exactly as CI does::

    PYTHONPATH=src python -m tools.arch_lint src tests

See ``README.md`` ("Static analysis") for the local workflow and
``tools/arch_lint/config.toml`` for rule scopes and allowlists.
"""

from .baseline import Baseline, BaselineError
from .config import LintConfig, load_config
from .engine import LintEngine, Violation
from .rules import all_rules

__all__ = [
    "Baseline",
    "BaselineError",
    "LintConfig",
    "LintEngine",
    "Violation",
    "all_rules",
    "load_config",
]
