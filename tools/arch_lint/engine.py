"""The lint engine: file walking, rule dispatch, suppressions, baseline diff."""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from .baseline import Baseline, fingerprint
from .config import LintConfig
from .rules import all_rules
from .rules.base import ModuleContext, Rule

__all__ = ["LintEngine", "Violation", "LintResult"]

#: Inline suppression: ``# arch-lint: disable=DT01`` (or ``disable=DT01,TS01``,
#: or ``disable=all``) on the flagged line, or alone on the line above it.
_SUPPRESS_RE = re.compile(r"#\s*arch-lint:\s*disable=([A-Za-z0-9_,* ]+)")


@dataclass(frozen=True)
class Violation:
    """One finding, with the stable fingerprint the baseline keys on."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fingerprint: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintResult:
    violations: tuple[Violation, ...]  # everything found (post-suppression)
    new_violations: tuple[Violation, ...]  # not covered by the baseline
    baselined: tuple[Violation, ...]
    suppressed_count: int
    files_scanned: int

    @property
    def ok(self) -> bool:
        return not self.new_violations


def _iter_python_files(paths: Sequence[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in ("__pycache__", ".git"))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))
    return sorted(set(files))


def _relpath(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), root)
    return rel.replace(os.sep, "/")


def _suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Line number -> rule ids suppressed there (``*`` suppresses all).

    A suppression comment covers its own line; a comment on a line of its own
    also covers the next line, so long flagged statements can carry the
    comment above instead of trailing it.
    """
    table: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {
            part.strip().replace("all", "*")
            for part in match.group(1).split(",")
            if part.strip()
        }
        table.setdefault(number, set()).update(rules)
        if line.lstrip().startswith("#"):  # standalone comment: covers the next line
            table.setdefault(number + 1, set()).update(rules)
    return table


class LintEngine:
    """Applies every enabled rule to every scanned module."""

    def __init__(
        self,
        config: LintConfig,
        *,
        root: str | None = None,
        rules: dict[str, Rule] | None = None,
    ) -> None:
        self.config = config
        self.root = os.path.abspath(root) if root is not None else os.getcwd()
        self.rules = rules if rules is not None else all_rules()

    # ------------------------------------------------------------------ #
    def lint_paths(
        self,
        paths: Sequence[str],
        *,
        baseline: Baseline | None = None,
        only_rules: Iterable[str] | None = None,
    ) -> LintResult:
        wanted = set(only_rules) if only_rules is not None else None
        violations: list[Violation] = []
        suppressed = 0
        files = [
            path
            for path in _iter_python_files(paths)
            if not self.config.excluded(_relpath(path, self.root))
        ]
        for path in files:
            found, skipped = self._lint_file(path, wanted)
            violations.extend(found)
            suppressed += skipped
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        accepted = baseline if baseline is not None else Baseline.empty()
        new = tuple(v for v in violations if not accepted.accepts(v))
        old = tuple(v for v in violations if accepted.accepts(v))
        return LintResult(
            violations=tuple(violations),
            new_violations=new,
            baselined=old,
            suppressed_count=suppressed,
            files_scanned=len(files),
        )

    # ------------------------------------------------------------------ #
    def _lint_file(self, path: str, wanted: set[str] | None) -> tuple[list[Violation], int]:
        relpath = _relpath(path, self.root)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            # Surface as a violation instead of crashing the run: a file that
            # does not parse cannot be certified against any invariant.
            message = f"file does not parse: {exc.msg}"
            return (
                [
                    Violation(
                        rule="E000",
                        path=relpath,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=message,
                        fingerprint=fingerprint("E000", relpath, message, 0),
                    )
                ],
                0,
            )
        lines = source.splitlines()
        module = ModuleContext(relpath=relpath, tree=tree, lines=lines)
        suppression_table = _suppressions(lines)
        occurrence: dict[tuple[str, str], int] = {}
        found: list[Violation] = []
        suppressed = 0
        for rule_id, rule in sorted(self.rules.items()):
            if wanted is not None and rule_id not in wanted:
                continue
            rule_config = self.config.rule_config(rule_id)
            if not rule_config.applies_to(relpath):
                continue
            for raw in rule.check(module, rule_config):
                suppressors = suppression_table.get(raw.line, set())
                if "*" in suppressors or rule_id in suppressors:
                    suppressed += 1
                    continue
                source_line = module.source_line(raw.line)
                key = (rule_id, source_line.strip())
                index = occurrence.get(key, 0)
                occurrence[key] = index + 1
                found.append(
                    Violation(
                        rule=rule_id,
                        path=relpath,
                        line=raw.line,
                        col=raw.col,
                        message=raw.message,
                        fingerprint=fingerprint(rule_id, relpath, source_line, index),
                    )
                )
        return found, suppressed
