"""``python -m tools.arch_lint`` — the CLI CI runs.

Exit codes: 0 = clean (no violations outside the baseline), 1 = new
violations (or baseline format drift), 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .baseline import BaselineError, load_baseline, save_baseline
from .config import DEFAULT_CONFIG_PATH, load_config
from .engine import LintEngine
from .rules import all_rules

DEFAULT_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline.txt")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.arch_lint",
        description="Architectural lint: id-plane, determinism, thread-safety and cache-hygiene rules.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"], help="files or directories to scan")
    parser.add_argument("--config", default=DEFAULT_CONFIG_PATH, help="config TOML path")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH, help="baseline file path")
    parser.add_argument("--no-baseline", action="store_true", help="ignore the baseline (report everything)")
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record all current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="only validate the baseline file (sorted, deduplicated, well-formed)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument("--list-rules", action="store_true", help="list registered rules and exit")
    parser.add_argument("--verbose", action="store_true", help="also print baselined/suppressed counts")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}  {rule.name}\n    {rule.description}")
        return 0

    if args.check_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"arch-lint: {exc}", file=sys.stderr)
            return 1
        print(f"baseline OK: {len(baseline)} recorded violations in {args.baseline}")
        return 0

    unknown = set(args.rules or ()) - set(all_rules())
    if unknown:
        print(f"arch-lint: unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    config = load_config(args.config)
    engine = LintEngine(config)

    if args.update_baseline:
        result = engine.lint_paths(args.paths, baseline=None, only_rules=args.rules)
        save_baseline(args.baseline, result.violations)
        print(
            f"baseline updated: {len(result.violations)} violations recorded in {args.baseline} "
            f"({result.files_scanned} files scanned)"
        )
        return 0

    try:
        baseline = None if args.no_baseline else load_baseline(args.baseline)
    except BaselineError as exc:
        print(f"arch-lint: {exc}", file=sys.stderr)
        return 1

    result = engine.lint_paths(args.paths, baseline=baseline, only_rules=args.rules)
    for violation in result.new_violations:
        print(violation.render())
    if args.verbose or result.new_violations:
        print(
            f"arch-lint: {len(result.new_violations)} new, {len(result.baselined)} baselined, "
            f"{result.suppressed_count} suppressed across {result.files_scanned} files",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
