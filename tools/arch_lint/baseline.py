"""Recorded-baseline store: known violations that do not fail the build.

The baseline exists so the linter can be adopted (and extended with new
rules) without blocking on fixing every historical finding at once — while
still failing the build on any *new* violation.  This PR ships with the
baseline at (near) zero: the real defects the first run surfaced were fixed,
not recorded.

Format — one violation per line, tab-separated::

    <rule-id>\t<repo-relative path>\t<fingerprint>\t<message>

Fingerprints hash the rule, path, the *content* of the flagged source line
and its occurrence index among identical lines — not the line number — so
unrelated edits to a file do not churn the baseline.  The file must be
sorted and duplicate-free; :func:`load_baseline` enforces this on every
load (not just in CI) so drift is caught the moment someone hand-edits it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import Violation

__all__ = ["Baseline", "BaselineError", "fingerprint", "load_baseline", "render_baseline"]


class BaselineError(ValueError):
    """Raised for malformed, unsorted, or duplicated baseline files."""


def fingerprint(rule_id: str, relpath: str, source_line: str, occurrence: int) -> str:
    """Stable identity of one violation; see module docstring for the design."""
    payload = f"{rule_id}:{relpath}:{source_line.strip()}:{occurrence}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class Baseline:
    """An immutable set of accepted violation fingerprints."""

    entries: frozenset[tuple[str, str, str]]  # (rule, path, fingerprint)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=frozenset())

    def accepts(self, violation: "Violation") -> bool:
        return (violation.rule, violation.path, violation.fingerprint) in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def _parse_line(line: str, line_number: int) -> tuple[str, str, str]:
    parts = line.split("\t")
    if len(parts) < 3:
        raise BaselineError(
            f"baseline line {line_number} is malformed (expected rule\\tpath\\tfingerprint\\t"
            f"message): {line!r}"
        )
    return (parts[0], parts[1], parts[2])


def load_baseline(path: str) -> Baseline:
    """Load and validate a baseline file; raises :class:`BaselineError` on drift."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
    except FileNotFoundError:
        return Baseline.empty()
    lines = [line for line in raw_lines if line.strip() and not line.startswith("#")]
    if lines != sorted(lines):
        raise BaselineError(
            f"baseline {path} is not sorted; regenerate with --update-baseline "
            "(sorted files keep diffs reviewable)"
        )
    if len(lines) != len(set(lines)):
        raise BaselineError(f"baseline {path} contains duplicate entries")
    entries = set()
    for number, line in enumerate(lines, start=1):
        entry = _parse_line(line, number)
        if entry in entries:
            raise BaselineError(
                f"baseline {path} records the same violation twice: {line!r}"
            )
        entries.add(entry)
    return Baseline(entries=frozenset(entries))


_HEADER = (
    "# arch-lint baseline: accepted violations (rule<TAB>path<TAB>fingerprint<TAB>message).\n"
    "# Regenerate with: PYTHONPATH=src python -m tools.arch_lint src tests --update-baseline\n"
    "# Keep this at (or near) zero: fix findings instead of recording them.\n"
)


def render_baseline(violations: Iterable["Violation"]) -> str:
    lines = sorted(
        {f"{v.rule}\t{v.path}\t{v.fingerprint}\t{v.message}" for v in violations}
    )
    return _HEADER + "".join(line + "\n" for line in lines)


def save_baseline(path: str, violations: Iterable["Violation"]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(violations))
